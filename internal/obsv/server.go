package obsv

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/metrics"
)

// JobInfo is the /jobs view of one job: the logical topology plus live
// per-node and per-instance runtime signals. The engine fills it via
// core.Job.Describe; obsv owns the shape so the server stays decoupled from
// the engine.
type JobInfo struct {
	Name           string `json:"name"`
	LastCheckpoint int64  `json:"last_checkpoint"`
	// AbortedCheckpoints counts checkpoints abandoned after a snapshot
	// failure (the job kept running; a later checkpoint subsumed them).
	AbortedCheckpoints int64 `json:"aborted_checkpoints"`
	// SnapshotSaveFailures counts individual failed snapshot attempts,
	// post-retry.
	SnapshotSaveFailures int64 `json:"snapshot_save_failures"`
	// Restarts counts supervised restarts of this job's lineage (filled by a
	// restart-strategy supervisor; 0 when the job runs unsupervised).
	Restarts int64 `json:"restarts"`
	// Rescales counts completed live reconfigurations of this job's lineage
	// (filled by the elastic controller; 0 for a fixed-parallelism job).
	Rescales int64 `json:"rescales,omitempty"`
	// LastRescaleDowntimeMs is the output gap of the most recent rescale:
	// savepoint trigger → first output of the re-parallelised incarnation.
	LastRescaleDowntimeMs int64 `json:"last_rescale_downtime_ms,omitempty"`
	// LastRescaleDurationMs is the offline span of the most recent rescale:
	// old incarnation exited → rescaled checkpoint written and new job
	// rebuilt/restored.
	LastRescaleDurationMs int64      `json:"last_rescale_duration_ms,omitempty"`
	Nodes                 []NodeInfo `json:"nodes"`
	Edges                 []EdgeInfo `json:"edges"`
	// Subscribers lists active serving-layer subscriptions fanned out from
	// this job's tapped streams (filled by the serve front door; empty for
	// jobs without one).
	Subscribers []SubscriberInfo `json:"subscribers,omitempty"`
}

// SubscriberInfo is one serving-layer subscription's live counters: what was
// delivered into its continuous query, what its overflow policy shed, and how
// far its bounded queue has fallen behind the job.
type SubscriberInfo struct {
	ID         string `json:"id"`
	Query      string `json:"query,omitempty"`
	Policy     string `json:"policy"`
	Delivered  int64  `json:"delivered"`
	Shed       int64  `json:"shed,omitempty"`
	QueueDepth int    `json:"queue_depth"`
	QueueCap   int    `json:"queue_cap"`
}

// NodeInfo describes one logical graph vertex and its aggregate counters.
type NodeInfo struct {
	Name        string         `json:"name"`
	Parallelism int            `json:"parallelism"`
	Source      bool           `json:"source,omitempty"`
	In          int64          `json:"in"`
	Out         int64          `json:"out"`
	Instances   []InstanceInfo `json:"instances,omitempty"`
}

// InstanceInfo carries per-instance live signals (zero values when the job
// is not instrumented or not yet running).
type InstanceInfo struct {
	ID             string `json:"id"`
	QueueDepth     int    `json:"queue_depth"`
	QueueCapacity  int    `json:"queue_capacity"`
	Watermark      int64  `json:"watermark"`
	WatermarkLagMs int64  `json:"watermark_lag_ms"`
}

// EdgeInfo describes one logical graph connection.
type EdgeInfo struct {
	From      string `json:"from"`
	To        string `json:"to"`
	Partition string `json:"partition"`
}

// Server is the HTTP introspection endpoint: /metrics (Prometheus text
// format), /jobs (topology + live counters as JSON) and /traces (recent
// spans as JSON).
type Server struct {
	registry *metrics.Registry
	tracer   *Tracer
	jobs     func() []JobInfo

	mu   sync.Mutex
	ln   net.Listener
	http *http.Server
	wg   sync.WaitGroup
}

// NewServer builds a server over the given sources. tracer may be nil
// (/traces serves an empty list) and jobs may be nil (/jobs serves an empty
// list).
func NewServer(reg *metrics.Registry, tracer *Tracer, jobs func() []JobInfo) *Server {
	return &Server{registry: reg, tracer: tracer, jobs: jobs}
}

// Handler returns the introspection routes; usable standalone for embedding
// into an existing mux or httptest.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WritePrometheus(w, s.registry)
	})
	mux.HandleFunc("/jobs", func(w http.ResponseWriter, _ *http.Request) {
		jobs := []JobInfo{}
		if s.jobs != nil {
			jobs = s.jobs()
		}
		writeJSON(w, jobs)
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		s.tracer.WriteJSON(w)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "observability endpoints: /metrics /jobs /traces\n")
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// Start listens on addr (host:port; port 0 picks a free port) and serves in
// a background goroutine until Close.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("obsv: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 5 * time.Second}
	s.mu.Lock()
	s.ln = ln
	s.http = srv
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		// Serve always returns a non-nil error; after Close it is
		// http.ErrServerClosed, which is the expected shutdown path.
		_ = srv.Serve(ln)
	}()
	return nil
}

// Addr returns the bound listen address (useful with port 0), or "" before
// Start.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener and in-flight handlers and joins the serve
// goroutine, so a returned Close guarantees the port is released and nothing
// from this server runs afterwards (tests reusing addresses relied on luck
// before).
func (s *Server) Close() error {
	s.mu.Lock()
	srv := s.http
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	err := srv.Close()
	s.wg.Wait()
	return err
}
