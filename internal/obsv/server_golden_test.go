package obsv

import (
	"io"
	"net/http/httptest"
	"testing"

	"repro/internal/metrics"
)

// These are handler-level golden tests: they pin the exact bytes /metrics and
// /jobs serve for a fixed input, so an accidental change to the exposition
// format (field rename, reordering, dropped quantile line) fails loudly. The
// fixtures avoid meters, whose EWMA rate depends on the wall clock.

func golden(t *testing.T, srv *Server, path string) string {
	t.Helper()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s: %d\n%s", path, resp.StatusCode, body)
	}
	return string(body)
}

func TestMetricsEndpointGolden(t *testing.T) {
	r := metrics.NewRegistry()
	r.Counter("node.win.in").Add(3)
	r.Gauge("node.win.0.queue_depth").Set(2)
	h := r.Histogram("node.win.latency_ns")
	h.Observe(1)
	h.Observe(100)
	h.Observe(100)

	want := `# TYPE node_win_in counter
node_win_in 3
# TYPE node_win_0_queue_depth gauge
node_win_0_queue_depth 2
# TYPE node_win_latency_ns histogram
node_win_latency_ns_bucket{le="1"} 1
node_win_latency_ns_bucket{le="127"} 3
node_win_latency_ns_bucket{le="+Inf"} 3
node_win_latency_ns_sum 201
node_win_latency_ns_count 3
# TYPE node_win_latency_ns_quantile gauge
node_win_latency_ns_quantile{quantile="0.5"} 100
node_win_latency_ns_quantile{quantile="0.95"} 100
node_win_latency_ns_quantile{quantile="0.99"} 100
`
	if got := golden(t, NewServer(r, nil, nil), "/metrics"); got != want {
		t.Fatalf("/metrics golden mismatch:\n got: %q\nwant: %q", got, want)
	}
}

func TestJobsEndpointGolden(t *testing.T) {
	jobs := func() []JobInfo {
		return []JobInfo{{
			Name:                  "elastic-demo",
			LastCheckpoint:        12,
			Restarts:              1,
			Rescales:              2,
			LastRescaleDowntimeMs: 57,
			LastRescaleDurationMs: 9,
			Nodes: []NodeInfo{
				{Name: "src", Parallelism: 1, Source: true, Out: 100,
					Instances: []InstanceInfo{{ID: "src-0"}}},
				{Name: "win", Parallelism: 2, In: 100, Out: 10,
					Instances: []InstanceInfo{
						{ID: "win-0", QueueDepth: 1, QueueCapacity: 4, Watermark: 990, WatermarkLagMs: 10},
						{ID: "win-1", QueueCapacity: 4},
					}},
			},
			Edges: []EdgeInfo{{From: "src", To: "win", Partition: "hash"}},
		}}
	}

	want := `[
  {
    "name": "elastic-demo",
    "last_checkpoint": 12,
    "aborted_checkpoints": 0,
    "snapshot_save_failures": 0,
    "restarts": 1,
    "rescales": 2,
    "last_rescale_downtime_ms": 57,
    "last_rescale_duration_ms": 9,
    "nodes": [
      {
        "name": "src",
        "parallelism": 1,
        "source": true,
        "in": 0,
        "out": 100,
        "instances": [
          {
            "id": "src-0",
            "queue_depth": 0,
            "queue_capacity": 0,
            "watermark": 0,
            "watermark_lag_ms": 0
          }
        ]
      },
      {
        "name": "win",
        "parallelism": 2,
        "in": 100,
        "out": 10,
        "instances": [
          {
            "id": "win-0",
            "queue_depth": 1,
            "queue_capacity": 4,
            "watermark": 990,
            "watermark_lag_ms": 10
          },
          {
            "id": "win-1",
            "queue_depth": 0,
            "queue_capacity": 4,
            "watermark": 0,
            "watermark_lag_ms": 0
          }
        ]
      }
    ],
    "edges": [
      {
        "from": "src",
        "to": "win",
        "partition": "hash"
      }
    ]
  }
]
`
	if got := golden(t, NewServer(metrics.NewRegistry(), nil, jobs), "/jobs"); got != want {
		t.Fatalf("/jobs golden mismatch:\n got: %q\nwant: %q", got, want)
	}
}

// TestJobsEndpointOmitsRescaleLineageWhenUnset pins the omitempty contract:
// a fixed-parallelism job must not grow rescale fields.
func TestJobsEndpointOmitsRescaleLineageWhenUnset(t *testing.T) {
	jobs := func() []JobInfo { return []JobInfo{{Name: "plain"}} }
	want := `[
  {
    "name": "plain",
    "last_checkpoint": 0,
    "aborted_checkpoints": 0,
    "snapshot_save_failures": 0,
    "restarts": 0,
    "nodes": null,
    "edges": null
  }
]
`
	if got := golden(t, NewServer(metrics.NewRegistry(), nil, jobs), "/jobs"); got != want {
		t.Fatalf("/jobs golden mismatch:\n got: %q\nwant: %q", got, want)
	}
}
