// Package obsv is the engine's observability layer: structured pipeline
// tracing (lightweight spans with ring-buffer retention), a Prometheus text
// exporter over the metrics registry, and an HTTP introspection server
// serving /metrics, /jobs and /traces. The paper's §3.3 argues that modern
// engines replaced blind load shedding with *observable* flow control —
// backpressure, progress and checkpoint timing are operational signals, not
// internals — and this package is where those signals surface.
//
// The package depends only on internal/metrics so every subsystem (core,
// load, experiments) can feed it without import cycles.
package obsv

import (
	"encoding/json"
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one recorded unit of runtime activity: an operator batch, a
// checkpoint, a barrier alignment, a rescale. Spans are recorded on End and
// retained in the tracer's ring buffer.
type Span struct {
	ID       int64  `json:"id"`
	Name     string `json:"name"`
	Operator string `json:"operator,omitempty"`
	Instance string `json:"instance,omitempty"`
	// StartUnixNano and EndUnixNano bound the span in wall-clock nanoseconds.
	StartUnixNano int64 `json:"start_unix_nano"`
	EndUnixNano   int64 `json:"end_unix_nano"`
	DurationNs    int64 `json:"duration_ns"`
	// Attrs carries span-specific attributes (checkpoint id, record-batch
	// size, watermark, ...).
	Attrs map[string]string `json:"attrs,omitempty"`

	tracer *Tracer
}

// Tracer records spans into a fixed-capacity ring buffer; the newest spans
// overwrite the oldest, so retention is bounded regardless of job length. A
// nil *Tracer is valid and records nothing — callers can thread an optional
// tracer without nil checks.
type Tracer struct {
	mu    sync.Mutex
	ring  []Span
	next  int
	total atomic.Int64
	seq   atomic.Int64
}

// DefaultTraceCapacity is the ring size used when NewTracer is given a
// non-positive capacity.
const DefaultTraceCapacity = 1024

// NewTracer returns a tracer retaining up to capacity finished spans.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{ring: make([]Span, 0, capacity)}
}

// Begin starts a span. The span is not visible in Spans until End is called.
// On a nil tracer it returns nil, which all Span methods tolerate.
func (t *Tracer) Begin(name, operator, instance string) *Span {
	if t == nil {
		return nil
	}
	return &Span{
		ID:            t.seq.Add(1),
		Name:          name,
		Operator:      operator,
		Instance:      instance,
		StartUnixNano: time.Now().UnixNano(),
		tracer:        t,
	}
}

// SetAttr attaches a string attribute; it returns the span for chaining.
func (s *Span) SetAttr(k, v string) *Span {
	if s == nil {
		return nil
	}
	if s.Attrs == nil {
		s.Attrs = make(map[string]string, 4)
	}
	s.Attrs[k] = v
	return s
}

// SetInt attaches an integer attribute; it returns the span for chaining.
func (s *Span) SetInt(k string, v int64) *Span {
	return s.SetAttr(k, strconv.FormatInt(v, 10))
}

// End stamps the span's end time and commits it to the tracer's ring buffer.
// Calling End more than once records the span more than once; don't.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.EndUnixNano = time.Now().UnixNano()
	s.DurationNs = s.EndUnixNano - s.StartUnixNano
	t := s.tracer
	rec := *s
	rec.tracer = nil
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, rec)
	} else {
		t.ring[t.next] = rec
	}
	t.next = (t.next + 1) % cap(t.ring)
	t.mu.Unlock()
	t.total.Add(1)
}

// Spans returns the retained spans, oldest first. Safe to call concurrently
// with recording. A nil tracer returns nil.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, len(t.ring))
	if len(t.ring) < cap(t.ring) {
		return append(out, t.ring...)
	}
	out = append(out, t.ring[t.next:]...)
	return append(out, t.ring[:t.next]...)
}

// Total returns how many spans have been recorded over the tracer's lifetime
// (including spans already evicted from the ring).
func (t *Tracer) Total() int64 {
	if t == nil {
		return 0
	}
	return t.total.Load()
}

// WriteJSON writes the retained spans as a JSON array, oldest first.
func (t *Tracer) WriteJSON(w io.Writer) error {
	spans := t.Spans()
	if spans == nil {
		spans = []Span{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(spans)
}
