// Package queryable implements queryable state (§4.2: "internal state,
// currently a black box to the user, is becoming the main point of interest
// for many interactive and reactive data applications"): pipelines publish
// snapshots of keyed state into a Service, and external clients read them
// over TCP with snapshot isolation — queries never touch the operator's live
// state, mirroring the isolation challenge the paper calls out (and Flink's
// point-query design it cites).
package queryable

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"net"
	"sort"
	"sync"

	"repro/internal/core"
)

// RegisterValueType registers the concrete type of published values with the
// wire codec (gob). Values whose dynamic type is not a gob builtin must be
// registered once — by the pipeline author, before serving — or the server
// cannot encode them and will answer point queries for those keys with an
// error response.
func RegisterValueType(v any) { gob.Register(v) }

// Service holds published state snapshots: table -> key -> value. Publishing
// a table replaces it atomically, so a reader never observes a half-updated
// snapshot.
type Service struct {
	mu     sync.RWMutex
	tables map[string]map[string]any
}

// NewService returns an empty service.
func NewService() *Service {
	return &Service{tables: make(map[string]map[string]any)}
}

// PublishSnapshot atomically replaces a table's contents.
func (s *Service) PublishSnapshot(table string, snap map[string]any) {
	copied := make(map[string]any, len(snap))
	for k, v := range snap {
		copied[k] = v
	}
	s.mu.Lock()
	s.tables[table] = copied
	s.mu.Unlock()
}

// Get reads one key from a table.
func (s *Service) Get(table, key string) (any, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[table]
	if !ok {
		return nil, false
	}
	v, ok := t[key]
	return v, ok
}

// Tables lists the published table names, sorted.
func (s *Service) Tables() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.tables))
	for t := range s.tables {
		names = append(names, t)
	}
	sort.Strings(names)
	return names
}

// Keys lists a table's keys, sorted.
func (s *Service) Keys(table string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t := s.tables[table]
	keys := make([]string, 0, len(t))
	for k := range t {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// PublishOperator wraps a keyed stream so that the named value state is
// published to the service on every watermark advance — the pipeline's state
// becomes externally visible at consistent (watermark-aligned) points.
func PublishOperator(s *core.Stream, name string, svc *Service, table, stateName string,
	update func(e core.Event, ctx core.Context)) *core.Stream {
	fac := func() core.Operator {
		return &publishOp{svc: svc, table: table, stateName: stateName, update: update}
	}
	return s.Process(name, fac)
}

type publishOp struct {
	core.BaseOperator
	svc       *Service
	table     string
	stateName string
	update    func(e core.Event, ctx core.Context)
}

func (o *publishOp) ProcessElement(e core.Event, ctx core.Context) error {
	o.update(e, ctx)
	return nil
}

func (o *publishOp) OnWatermark(_ int64, ctx core.Context) error {
	snap := map[string]any{}
	ctx.State().ForEachKey(o.stateName, func(key string, v any) bool {
		snap[key] = v
		return true
	})
	o.svc.PublishSnapshot(o.table, snap)
	return nil
}

// Close publishes the final snapshot.
func (o *publishOp) Close(ctx core.Context) error { return o.OnWatermark(0, ctx) }

// --- Wire protocol --------------------------------------------------------

// request is the client->server message.
type request struct {
	Op    string // "get" | "keys"
	Table string
	Key   string
}

// response is the server->client message.
type response struct {
	Found bool
	Value any
	Keys  []string
	Err   string
}

// Server exposes a Service over TCP using gob framing.
type Server struct {
	svc    *Service
	ln     net.Listener
	wg     sync.WaitGroup
	connMu sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// Serve starts listening on addr ("127.0.0.1:0" picks a free port).
func Serve(svc *Service, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("queryable: listen: %w", err)
	}
	s := &Server{svc: svc, ln: ln, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and terminates active connections.
func (s *Server) Close() error {
	err := s.ln.Close()
	s.connMu.Lock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.connMu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.connMu.Lock()
		if s.closed {
			s.connMu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		// The Add must happen inside the critical section that checked
		// closed: it is then ordered against Close's closed=true store, so a
		// handler is either registered before Close's Wait can observe the
		// counter or never started at all. Adding after the unlock raced
		// Close's wg.Wait.
		s.wg.Add(1)
		s.connMu.Unlock()
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

func (s *Server) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		s.connMu.Lock()
		delete(s.conns, conn)
		s.connMu.Unlock()
	}()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	dec := gob.NewDecoder(r)
	enc := gob.NewEncoder(w)
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			return
		}
		var resp response
		switch req.Op {
		case "get":
			v, ok := s.svc.Get(req.Table, req.Key)
			resp.Found = ok
			resp.Value = v
		case "keys":
			resp.Keys = s.svc.Keys(req.Table)
			resp.Found = true
		default:
			resp.Err = fmt.Sprintf("unknown op %q", req.Op)
		}
		if err := enc.Encode(&resp); err != nil {
			// Most likely an unregistered concrete value type. gob buffers
			// the value message and only writes it on success, so the stream
			// is still consistent — answer with an error response instead of
			// silently dropping the connection (the client used to see a bare
			// EOF with no hint why).
			fallback := response{Err: fmt.Sprintf("encode response: %v (register the value's type with queryable.RegisterValueType)", err)}
			if err := enc.Encode(&fallback); err != nil {
				return
			}
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// Client is a TCP client for a queryable-state server. Safe for sequential
// use; create one per goroutine.
type Client struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
	w    *bufio.Writer
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("queryable: dial: %w", err)
	}
	w := bufio.NewWriter(conn)
	return &Client{
		conn: conn,
		enc:  gob.NewEncoder(w),
		dec:  gob.NewDecoder(bufio.NewReader(conn)),
		w:    w,
	}, nil
}

// Close releases the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) roundtrip(req request) (response, error) {
	if err := c.enc.Encode(&req); err != nil {
		return response{}, fmt.Errorf("queryable: send: %w", err)
	}
	if err := c.w.Flush(); err != nil {
		return response{}, fmt.Errorf("queryable: flush: %w", err)
	}
	var resp response
	if err := c.dec.Decode(&resp); err != nil {
		return response{}, fmt.Errorf("queryable: recv: %w", err)
	}
	if resp.Err != "" {
		return response{}, fmt.Errorf("queryable: server: %s", resp.Err)
	}
	return resp, nil
}

// Get reads one key from a table.
func (c *Client) Get(table, key string) (any, bool, error) {
	resp, err := c.roundtrip(request{Op: "get", Table: table, Key: key})
	if err != nil {
		return nil, false, err
	}
	return resp.Value, resp.Found, nil
}

// Keys lists a table's keys.
func (c *Client) Keys(table string) ([]string, error) {
	resp, err := c.roundtrip(request{Op: "keys", Table: table})
	if err != nil {
		return nil, err
	}
	return resp.Keys, nil
}
