package queryable

import (
	"context"
	"encoding/gob"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

func init() { gob.Register(int64(0)) }

func TestServiceSnapshotIsolation(t *testing.T) {
	svc := NewService()
	src := map[string]any{"a": int64(1)}
	svc.PublishSnapshot("t", src)
	// Mutating the source map must not affect the published snapshot.
	src["a"] = int64(99)
	v, ok := svc.Get("t", "a")
	if !ok || v.(int64) != 1 {
		t.Fatalf("snapshot not isolated: %v %v", v, ok)
	}
	// Missing table/key.
	if _, ok := svc.Get("missing", "a"); ok {
		t.Fatal("phantom table")
	}
	if _, ok := svc.Get("t", "missing"); ok {
		t.Fatal("phantom key")
	}
}

func TestServerClientRoundtrip(t *testing.T) {
	svc := NewService()
	svc.PublishSnapshot("counts", map[string]any{"x": int64(7), "y": int64(8)})
	srv, err := Serve(svc, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	v, found, err := c.Get("counts", "x")
	if err != nil || !found || v.(int64) != 7 {
		t.Fatalf("get: %v %v %v", v, found, err)
	}
	_, found, err = c.Get("counts", "zzz")
	if err != nil || found {
		t.Fatalf("missing key: found=%v err=%v", found, err)
	}
	keys, err := c.Keys("counts")
	if err != nil || len(keys) != 2 || keys[0] != "x" || keys[1] != "y" {
		t.Fatalf("keys: %v %v", keys, err)
	}
}

func TestMultipleClientsAndRepublish(t *testing.T) {
	svc := NewService()
	srv, err := Serve(svc, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	for i := 0; i < 3; i++ {
		svc.PublishSnapshot("v", map[string]any{"n": int64(i)})
		c, err := Dial(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		v, _, err := c.Get("v", "n")
		c.Close()
		if err != nil || v.(int64) != int64(i) {
			t.Fatalf("republish %d: %v %v", i, v, err)
		}
	}
}

func TestQueryableStateFromPipeline(t *testing.T) {
	// A keyed counting pipeline publishes its state; an external TCP client
	// reads consistent per-key counts.
	var events []core.Event
	for i := 0; i < 300; i++ {
		events = append(events, core.Event{
			Key:       fmt.Sprintf("k%d", i%3),
			Timestamp: int64(i * 10),
			Value:     int64(1),
		})
	}

	svc := NewService()
	b := core.NewBuilder(core.Config{Name: "qs", WatermarkInterval: 16})
	s := b.Source("src", core.NewSliceSourceFactory(events), core.WithBoundedDisorder(0)).
		KeyBy(func(e core.Event) string { return e.Key })
	PublishOperator(s, "count", svc, "counts", "n", func(e core.Event, ctx core.Context) {
		st := ctx.State().Value("n")
		n := int64(0)
		if v, ok := st.Get(); ok {
			n = v.(int64)
		}
		st.Set(n + 1)
	}).Sink("out", core.NewCollectSink().Factory())
	j, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := j.Run(ctx); err != nil {
		t.Fatal(err)
	}

	srv, err := Serve(svc, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	total := int64(0)
	for i := 0; i < 3; i++ {
		v, found, err := c.Get("counts", fmt.Sprintf("k%d", i))
		if err != nil || !found {
			t.Fatalf("key k%d: %v %v", i, found, err)
		}
		total += v.(int64)
	}
	if total != 300 {
		t.Fatalf("queryable counts: want 300 total, got %d", total)
	}
}

func TestClientAgainstClosedServer(t *testing.T) {
	svc := NewService()
	srv, err := Serve(svc, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	// The in-flight connection errors out on next use.
	if _, _, err := c.Get("t", "k"); err == nil {
		// A get may succeed if the close raced; a second must fail.
		if _, _, err := c.Get("t", "k"); err == nil {
			t.Fatal("client kept working against closed server")
		}
	}
	c.Close()
}

type unregisteredValue struct{ N int }

type registeredValue struct{ N int }

// Regression: Server.handle used to silently drop the connection when gob
// could not encode an unregistered value type — the client saw a bare EOF.
// Now it answers with an error response, and the connection stays usable.
func TestUnregisteredValueTypeReportsError(t *testing.T) {
	svc := NewService()
	svc.PublishSnapshot("t", map[string]any{
		"bad":  unregisteredValue{N: 1},
		"good": int64(7),
	})
	srv, err := Serve(svc, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	_, _, err = c.Get("t", "bad")
	if err == nil {
		t.Fatal("unencodable value answered without error")
	}
	if !strings.Contains(err.Error(), "RegisterValueType") {
		t.Fatalf("error does not explain the fix: %v", err)
	}
	// The stream survived the failed encode: later queries still work.
	v, found, err := c.Get("t", "good")
	if err != nil || !found || v.(int64) != 7 {
		t.Fatalf("connection unusable after encode failure: %v %v %v", v, found, err)
	}
}

func TestRegisterValueTypeRoundtrip(t *testing.T) {
	RegisterValueType(registeredValue{})
	svc := NewService()
	svc.PublishSnapshot("t", map[string]any{"k": registeredValue{N: 42}})
	srv, err := Serve(svc, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	v, found, err := c.Get("t", "k")
	if err != nil || !found || v.(registeredValue).N != 42 {
		t.Fatalf("registered value roundtrip: %v %v %v", v, found, err)
	}
}

// Regression for the acceptLoop wg.Add / Close wg.Wait race: hammer
// concurrent dials against servers being closed. Meaningful under -race.
func TestServeCloseAcceptRace(t *testing.T) {
	svc := NewService()
	svc.PublishSnapshot("t", map[string]any{"k": int64(1)})
	for i := 0; i < 30; i++ {
		srv, err := Serve(svc, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for d := 0; d < 4; d++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				c, err := Dial(srv.Addr())
				if err != nil {
					return // server may already be closing
				}
				c.Get("t", "k")
				c.Close()
			}()
		}
		srv.Close()
		wg.Wait()
	}
}
