package serve

import (
	"bufio"
	"fmt"
	"net"
	"sync"
)

// Client speaks the serve wire protocol: request/reply ops correlated by
// sequence number plus asynchronous subscription frames dispatched to
// per-subscription channels. Safe for concurrent use.
type Client struct {
	conn net.Conn

	writeMu sync.Mutex
	w       *bufio.Writer

	mu      sync.Mutex
	seq     uint64
	pending map[uint64]chan *Frame
	subs    map[string]*ClientSub
	err     error // terminal read-loop error
	done    chan struct{}
}

// ClientSub is one live subscription's receive side.
type ClientSub struct {
	// ID is the client-chosen subscription id.
	ID string
	// Frames delivers the subscription's stream in order: "delta" frames
	// (Kind/Ts/Row), "watermark" frames, then one final "eos" or "error"
	// frame, after which the channel closes. The read loop blocks while this
	// channel is full — consume it promptly or buffer on your side; the
	// SERVER never blocks either way (its per-subscription queue sheds).
	Frames chan *Frame

	mu     sync.Mutex
	closed bool
}

// deliver hands one frame to the consumer; false once the channel is shut.
// The send blocks under mu so shut() serialises behind in-flight deliveries
// instead of racing a close against them.
func (s *ClientSub) deliver(f *Frame) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.Frames <- f
	return true
}

func (s *ClientSub) shut() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.closed {
		s.closed = true
		close(s.Frames)
	}
}

// Dial connects to a serve front door.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("serve: dial: %w", err)
	}
	c := &Client{
		conn:    conn,
		w:       bufio.NewWriter(conn),
		pending: map[uint64]chan *Frame{},
		subs:    map[string]*ClientSub{},
		done:    make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

// Close tears down the connection; all pending calls and subscription
// channels terminate.
func (c *Client) Close() error {
	err := c.conn.Close()
	<-c.done
	return err
}

func (c *Client) readLoop() {
	r := bufio.NewReader(c.conn)
	var readErr error
	for {
		var f Frame
		if err := readFrame(r, &f); err != nil {
			readErr = err
			break
		}
		if f.Seq != 0 {
			c.mu.Lock()
			ch := c.pending[f.Seq]
			delete(c.pending, f.Seq)
			c.mu.Unlock()
			if ch != nil {
				ch <- &f
			}
			continue
		}
		// Stream frame for a subscription; terminal frames close it.
		c.mu.Lock()
		sub := c.subs[f.ID]
		terminal := f.Op == "eos" || f.Op == "error"
		if terminal {
			delete(c.subs, f.ID)
		}
		c.mu.Unlock()
		if sub == nil {
			if f.ID == "" && f.Op == "error" {
				// Connection-scoped error (e.g. 57P01 shutdown).
				readErr = fmt.Errorf("serve: server: %s: %s", f.Code, f.Err)
				break
			}
			continue // frame for an already-dropped subscription
		}
		sub.deliver(&f)
		if terminal {
			sub.shut()
		}
	}
	// Fail everything still outstanding.
	c.mu.Lock()
	if readErr == nil {
		readErr = fmt.Errorf("serve: connection closed")
	}
	c.err = readErr
	for seq, ch := range c.pending {
		delete(c.pending, seq)
		close(ch)
	}
	subs := make([]*ClientSub, 0, len(c.subs))
	for id, sub := range c.subs {
		delete(c.subs, id)
		subs = append(subs, sub)
	}
	c.mu.Unlock()
	for _, sub := range subs {
		sub.shut()
	}
	close(c.done)
}

func (c *Client) call(req *Request) (*Frame, error) {
	ch := make(chan *Frame, 1)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	c.seq++
	req.Seq = c.seq
	c.pending[req.Seq] = ch
	c.mu.Unlock()

	c.writeMu.Lock()
	err := writeFrame(c.w, req)
	if err == nil {
		err = c.w.Flush()
	}
	c.writeMu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, req.Seq)
		c.mu.Unlock()
		return nil, fmt.Errorf("serve: send: %w", err)
	}
	f, ok := <-ch
	if !ok {
		c.mu.Lock()
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	if f.Op == "error" {
		return nil, &Error{Code: f.Code, Msg: f.Err}
	}
	return f, nil
}

// SubscribeOptions tune one subscription's server-side queue.
type SubscribeOptions struct {
	// Buffer is the queue capacity (0 = server default).
	Buffer int
	// Policy is "drop-oldest", "drop-newest" or "disconnect" ("" = server
	// default).
	Policy string
}

// Subscribe registers a continuous CQL query under id and returns its
// receive side once the server acknowledges it. Deltas for records published
// after the ack are guaranteed to arrive; the subscription ends with an
// "eos" or "error" frame and a closed channel.
func (c *Client) Subscribe(id, query string, opts SubscribeOptions) (*ClientSub, error) {
	sub := &ClientSub{ID: id, Frames: make(chan *Frame, 256)}
	c.mu.Lock()
	if _, dup := c.subs[id]; dup {
		c.mu.Unlock()
		return nil, &Error{Code: CodeDuplicate, Msg: fmt.Sprintf("subscription id %q already in use", id)}
	}
	// Register before the ack: the server may start streaming deltas the
	// moment it accepts, ahead of our reply arriving.
	c.subs[id] = sub
	c.mu.Unlock()
	if _, err := c.call(&Request{Op: "subscribe", ID: id, Query: query,
		Buffer: opts.Buffer, Policy: opts.Policy}); err != nil {
		c.mu.Lock()
		delete(c.subs, id)
		c.mu.Unlock()
		return nil, err
	}
	return sub, nil
}

// Unsubscribe cancels a subscription; its channel closes without a terminal
// frame.
func (c *Client) Unsubscribe(id string) error {
	_, err := c.call(&Request{Op: "unsubscribe", ID: id})
	c.mu.Lock()
	sub := c.subs[id]
	delete(c.subs, id)
	c.mu.Unlock()
	if sub == nil {
		return err
	}
	// The map removal stops future routing; at most one in-flight deliver
	// remains. Draining the channel guarantees that deliver cannot block, so
	// the shut cannot deadlock against it.
	for {
		select {
		case _, ok := <-sub.Frames:
			if !ok {
				return err
			}
		default:
			sub.shut()
			return err
		}
	}
}

// Get point-queries one key of a queryable table. Values round-trip through
// JSON (numbers arrive as float64).
func (c *Client) Get(table, key string) (any, bool, error) {
	f, err := c.call(&Request{Op: "get", Table: table, Key: key})
	if err != nil {
		return nil, false, err
	}
	return f.Value, f.Found, nil
}

// Keys lists a queryable table's keys.
func (c *Client) Keys(table string) ([]string, error) {
	f, err := c.call(&Request{Op: "keys", Table: table})
	if err != nil {
		return nil, err
	}
	return f.Keys, nil
}

// Tables lists the queryable table names.
func (c *Client) Tables() ([]string, error) {
	f, err := c.call(&Request{Op: "tables"})
	if err != nil {
		return nil, err
	}
	return f.Tables, nil
}

// Describe returns the servable stream names and queryable tables.
func (c *Client) Describe() (streams, tables []string, err error) {
	f, err := c.call(&Request{Op: "describe"})
	if err != nil {
		return nil, nil, err
	}
	return f.Streams, f.Tables, nil
}

// Ping round-trips a no-op request.
func (c *Client) Ping() error {
	_, err := c.call(&Request{Op: "ping"})
	return err
}
