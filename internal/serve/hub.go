package serve

import (
	"math"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/cql"
	"repro/internal/load"
	"repro/internal/metrics"
	"repro/internal/obsv"
)

// Item is one raw record queued for a subscription: the tap's extracted row,
// not yet run through the subscription's query. The executor runs on the
// consumer's goroutine so a slow or expensive query costs its own subscriber,
// never the job.
type Item struct {
	Stream string
	Ts     int64
	Row    cql.Row
}

// delivery is one batch handed to a subscription's pump: drained records
// first, then (conservatively after them) the coalesced watermark, then
// terminal conditions.
type delivery struct {
	items  []Item
	wm     int64
	wmSet  bool
	eos    bool
	killed bool
	closed bool
}

// Hub fans a job's tapped streams out to N subscriptions: one producer (the
// pipeline, via core.Tap callbacks that never block) and per-subscription
// bounded queues whose overflow policy decides what a lagging consumer loses.
type Hub struct {
	mu      sync.Mutex
	streams map[string]bool
	subs    map[string]*Subscription
	// routes caches the per-stream subscriber list on the publish hot path;
	// entries are immutable slices, invalidated wholesale on any
	// subscribe/cancel so publishers never see a stale membership.
	routes        map[string][]*Subscription
	reg           *metrics.Registry
	subscribers   *metrics.Gauge
	defaultCap    int
	defaultPolicy load.OverflowPolicy
	closed        bool
}

// NewHub builds a hub publishing per-subscriber counters into reg (nil gets
// a private registry). defaultCap is the queue capacity subscriptions get
// when they do not ask for one (minimum 1; 0 selects 256).
func NewHub(reg *metrics.Registry, defaultCap int, defaultPolicy load.OverflowPolicy) *Hub {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	if defaultCap <= 0 {
		defaultCap = 256
	}
	return &Hub{
		streams:       map[string]bool{},
		subs:          map[string]*Subscription{},
		routes:        map[string][]*Subscription{},
		reg:           reg,
		subscribers:   reg.Gauge("serve.subscribers"),
		defaultCap:    defaultCap,
		defaultPolicy: defaultPolicy,
	}
}

// RegisterStream names a pipeline stream and returns the core.Tap to attach
// at the point whose traffic the name should mean (s.TapInto(name, tap)).
// extract converts engine events to CQL rows; returning false skips the
// record. Re-registering a name returns a tap publishing to the same
// subscribers — this is how a rescaled job's new incarnation resumes
// publishing to subscriptions that rode through the reconfiguration.
func (h *Hub) RegisterStream(name string, extract func(core.Event) (cql.Row, bool)) core.Tap {
	h.mu.Lock()
	h.streams[name] = true
	h.mu.Unlock()
	return &streamTap{hub: h, name: name, extract: extract}
}

// Streams lists the registered stream names, sorted.
func (h *Hub) Streams() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]string, 0, len(h.streams))
	for s := range h.streams {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Subscribe prepares query and registers a subscription named name (unique
// within the hub; the serve server prefixes the client's id with a
// per-connection tag). bufCap <= 0 selects the hub default.
func (h *Hub) Subscribe(name, query string, bufCap int, policy load.OverflowPolicy) (*Subscription, error) {
	exec, err := cql.Prepare(query)
	if err != nil {
		return nil, errf(CodeSyntax, "%v", err)
	}
	if bufCap <= 0 {
		bufCap = h.defaultCap
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, errf(CodeShutdown, "serve: hub is closed")
	}
	for _, s := range exec.Streams() {
		if !h.streams[s] {
			return nil, errf(CodeUndefinedStream, "serve: query references unregistered stream %q", s)
		}
	}
	if _, dup := h.subs[name]; dup {
		return nil, errf(CodeDuplicate, "serve: subscription id %q already in use", name)
	}
	sub := &Subscription{
		name:      name,
		query:     query,
		hub:       h,
		exec:      exec,
		q:         load.NewBoundedBuffer[Item](bufCap, policy),
		wms:       map[string]int64{},
		streams:   map[string]bool{},
		delivered: h.reg.Counter("serve.sub." + name + ".delivered"),
		shedC:     h.reg.Counter("serve.sub." + name + ".shed"),
		depth:     h.reg.Gauge("serve.sub." + name + ".queue_depth"),
	}
	sub.cond = sync.NewCond(&sub.mu)
	for _, s := range exec.Streams() {
		sub.streams[s] = true
	}
	sub.eosLeft = len(sub.streams)
	h.subs[name] = sub
	h.routes = map[string][]*Subscription{}
	h.subscribers.Set(int64(len(h.subs)))
	return sub, nil
}

// Subscribers reports every live subscription's counters for /jobs.
func (h *Hub) Subscribers() []obsv.SubscriberInfo {
	h.mu.Lock()
	subs := make([]*Subscription, 0, len(h.subs))
	for _, s := range h.subs {
		subs = append(subs, s)
	}
	h.mu.Unlock()
	out := make([]obsv.SubscriberInfo, 0, len(subs))
	for _, s := range subs {
		s.mu.Lock()
		out = append(out, obsv.SubscriberInfo{
			ID:         s.name,
			Query:      s.query,
			Policy:     s.q.Policy().String(),
			Delivered:  s.delivered.Value(),
			Shed:       s.q.Shed(),
			QueueDepth: s.q.Len(),
			QueueCap:   s.q.Cap(),
		})
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Close cancels every subscription; later Subscribe calls fail with 57P01.
// Registered taps stay valid — their publishes become no-ops.
func (h *Hub) Close() {
	h.mu.Lock()
	h.closed = true
	subs := make([]*Subscription, 0, len(h.subs))
	for _, s := range h.subs {
		subs = append(subs, s)
	}
	h.mu.Unlock()
	for _, s := range subs {
		s.Cancel()
	}
}

func (h *Hub) remove(name string) {
	h.mu.Lock()
	if _, ok := h.subs[name]; ok {
		delete(h.subs, name)
		h.routes = map[string][]*Subscription{}
		h.subscribers.Set(int64(len(h.subs)))
	}
	h.mu.Unlock()
}

// snapshot returns the subscriptions consuming stream (cached; the returned
// slice is immutable).
func (h *Hub) snapshot(stream string) []*Subscription {
	h.mu.Lock()
	defer h.mu.Unlock()
	if out, ok := h.routes[stream]; ok {
		return out
	}
	out := []*Subscription{}
	for _, s := range h.subs {
		if s.streams[stream] {
			out = append(out, s)
		}
	}
	h.routes[stream] = out
	return out
}

func (h *Hub) publishRecord(stream string, ts int64, row cql.Row) {
	for _, s := range h.snapshot(stream) {
		s.offer(Item{Stream: stream, Ts: ts, Row: row})
	}
}

func (h *Hub) publishWatermark(stream string, wm int64) {
	for _, s := range h.snapshot(stream) {
		s.advanceWatermark(stream, wm)
	}
}

func (h *Hub) publishEOS(stream string) {
	for _, s := range h.snapshot(stream) {
		s.streamEOS(stream)
	}
}

// streamTap adapts hub publication to the engine's core.Tap contract; every
// callback is non-blocking by construction (bounded queues, policy sheds).
type streamTap struct {
	hub     *Hub
	name    string
	extract func(core.Event) (cql.Row, bool)
}

func (t *streamTap) OnRecord(e core.Event) {
	if row, ok := t.extract(e); ok {
		t.hub.publishRecord(t.name, e.Timestamp, row)
	}
}

func (t *streamTap) OnWatermark(wm int64) { t.hub.publishWatermark(t.name, wm) }

func (t *streamTap) OnEOS() { t.hub.publishEOS(t.name) }

// Subscription is one consumer's bounded view of the hub: raw records queue
// under the overflow policy, watermarks coalesce (never shed — only the
// latest matters), and the pump drains via next().
type Subscription struct {
	name    string
	query   string
	hub     *Hub
	exec    *cql.Executor
	streams map[string]bool

	mu   sync.Mutex
	cond *sync.Cond
	q    *load.BoundedBuffer[Item]
	// wms holds the latest watermark per input stream; the subscription's
	// event time is the min across all its streams (EOS'd streams stop
	// constraining it).
	wms     map[string]int64
	wmPend  int64
	wmDirty bool
	eosLeft int // input streams that have not yet hit EOS
	eos     bool
	killed  bool
	closed  bool
	onKill  func()

	delivered *metrics.Counter
	shedC     *metrics.Counter
	depth     *metrics.Gauge
}

// Name returns the hub-wide subscription id (the metrics label).
func (s *Subscription) Name() string { return s.name }

// Query returns the CQL text.
func (s *Subscription) Query() string { return s.query }

// Exec returns the subscription's prepared executor. It is NOT safe for
// concurrent use; only the pump goroutine may touch it.
func (s *Subscription) Exec() *cql.Executor { return s.exec }

// Shed returns how many records the overflow policy has dropped.
func (s *Subscription) Shed() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.q.Shed()
}

// OnKill installs a callback fired once when the disconnect policy trips —
// the serve server closes the client's connection here so a pump blocked on
// a jammed socket unwinds.
func (s *Subscription) OnKill(fn func()) {
	s.mu.Lock()
	s.onKill = fn
	s.mu.Unlock()
}

// Cancel detaches the subscription from the hub; a pump blocked in next()
// returns with closed=true.
func (s *Subscription) Cancel() {
	s.mu.Lock()
	already := s.closed
	s.closed = true
	s.cond.Signal()
	s.mu.Unlock()
	if !already {
		s.hub.remove(s.name)
	}
}

func (s *Subscription) offer(it Item) {
	s.mu.Lock()
	if s.closed || s.killed {
		s.mu.Unlock()
		return
	}
	shed, kill := s.q.Push(it)
	if shed {
		s.shedC.Inc()
	}
	s.depth.Set(int64(s.q.Len()))
	var onKill func()
	if kill {
		s.killed = true
		onKill = s.onKill
	}
	s.cond.Signal()
	s.mu.Unlock()
	if onKill != nil {
		onKill()
	}
}

func (s *Subscription) advanceWatermark(stream string, wm int64) {
	s.mu.Lock()
	defer func() { s.cond.Signal(); s.mu.Unlock() }()
	if s.closed {
		return
	}
	if old, ok := s.wms[stream]; ok && wm <= old {
		return
	}
	s.wms[stream] = wm
	// The subscription's watermark is the min across ALL its input streams;
	// until every stream has reported there is no lower bound to announce.
	if len(s.wms) < len(s.streams) {
		return
	}
	min := int64(math.MaxInt64)
	for _, v := range s.wms {
		if v < min {
			min = v
		}
	}
	if min > s.wmPend || !s.wmDirty {
		s.wmPend = min
		s.wmDirty = true
	}
}

func (s *Subscription) streamEOS(stream string) {
	s.mu.Lock()
	if !s.eos && s.streams[stream] && s.wms[stream] != math.MaxInt64 {
		// A finished stream no longer constrains the watermark (the MaxInt64
		// marker also dedups repeated EOS from a re-registered tap).
		s.wms[stream] = math.MaxInt64
		s.eosLeft--
		if s.eosLeft <= 0 {
			s.eos = true
		}
	}
	s.cond.Signal()
	s.mu.Unlock()
}

// next blocks until the subscription has work and returns it: queued records,
// then the coalesced watermark (delivered after the records it postdates —
// conservative, never early), then eos/killed/closed terminal flags.
func (s *Subscription) next() delivery {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		var d delivery
		for {
			it, ok := s.q.Pop()
			if !ok {
				break
			}
			d.items = append(d.items, it)
		}
		if len(d.items) > 0 {
			s.delivered.Add(int64(len(d.items)))
			s.depth.Set(0)
		}
		if s.wmDirty {
			d.wm, d.wmSet = s.wmPend, true
			s.wmDirty = false
		}
		d.eos, d.killed, d.closed = s.eos, s.killed, s.closed
		if len(d.items) > 0 || d.wmSet || d.eos || d.killed || d.closed {
			return d
		}
		s.cond.Wait()
	}
}

