package serve

import (
	"fmt"
	"testing"

	"repro/internal/cql"
	"repro/internal/load"
	"repro/internal/metrics"
)

func row(v int64) cql.Row { return cql.Row{"v": v} }

func TestHubFanOutDeliversToAllSubscribers(t *testing.T) {
	h := NewHub(nil, 16, load.DropOldest)
	h.RegisterStream("s", nil)
	var subs []*Subscription
	for i := 0; i < 3; i++ {
		sub, err := h.Subscribe(fmt.Sprintf("sub%d", i), "ISTREAM (SELECT v FROM s [NOW])", 0, load.DropOldest)
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, sub)
	}
	for i := 0; i < 5; i++ {
		h.publishRecord("s", int64(i), row(int64(i)))
	}
	for _, sub := range subs {
		d := sub.next()
		if len(d.items) != 5 {
			t.Fatalf("%s got %d items, want 5", sub.Name(), len(d.items))
		}
		for i, it := range d.items {
			if it.Stream != "s" || it.Ts != int64(i) || it.Row["v"].(int64) != int64(i) {
				t.Fatalf("%s item %d = %+v", sub.Name(), i, it)
			}
		}
	}
}

func TestHubWatermarkCoalesces(t *testing.T) {
	h := NewHub(nil, 16, load.DropOldest)
	h.RegisterStream("s", nil)
	sub, err := h.Subscribe("w", "ISTREAM (SELECT v FROM s [NOW])", 0, load.DropOldest)
	if err != nil {
		t.Fatal(err)
	}
	// Five watermarks with no consumer in between: only the latest matters,
	// none shed, queue untouched.
	for wm := int64(10); wm <= 50; wm += 10 {
		h.publishWatermark("s", wm)
	}
	d := sub.next()
	if len(d.items) != 0 || !d.wmSet || d.wm != 50 {
		t.Fatalf("delivery = %+v, want coalesced wm 50", d)
	}
	if sub.Shed() != 0 {
		t.Fatalf("watermarks shed: %d", sub.Shed())
	}
}

func TestHubMultiStreamWatermarkIsMin(t *testing.T) {
	h := NewHub(nil, 16, load.DropOldest)
	h.RegisterStream("a", nil)
	h.RegisterStream("b", nil)
	sub, err := h.Subscribe("j", "ISTREAM (SELECT a.v AS x, b.v AS y FROM a [RANGE 100], b [RANGE 100])", 0, load.DropOldest)
	if err != nil {
		t.Fatal(err)
	}
	// One stream alone gives no lower bound.
	h.publishWatermark("a", 40)
	h.publishRecord("a", 1, row(1)) // something to wake next() on
	d := sub.next()
	if d.wmSet {
		t.Fatalf("watermark announced before all streams reported: %+v", d)
	}
	h.publishWatermark("b", 25)
	if d = sub.next(); !d.wmSet || d.wm != 25 {
		t.Fatalf("want min watermark 25, got %+v", d)
	}
	// EOS on b stops constraining the min.
	h.publishEOS("b")
	h.publishWatermark("a", 60)
	if d = sub.next(); !d.wmSet || d.wm != 60 {
		t.Fatalf("EOS'd stream still constrains watermark: %+v", d)
	}
	if d.eos {
		t.Fatal("eos with one stream still live")
	}
	h.publishEOS("a")
	if d = sub.next(); !d.eos {
		t.Fatalf("want eos after all streams end, got %+v", d)
	}
}

func TestHubDropOldestShedsAndCounts(t *testing.T) {
	reg := metrics.NewRegistry()
	h := NewHub(reg, 16, load.DropOldest)
	h.RegisterStream("s", nil)
	sub, err := h.Subscribe("lag", "ISTREAM (SELECT v FROM s [NOW])", 4, load.DropOldest)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		h.publishRecord("s", int64(i), row(int64(i)))
	}
	d := sub.next()
	if len(d.items) != 4 {
		t.Fatalf("stalled subscriber kept %d items, want newest 4", len(d.items))
	}
	for i, it := range d.items {
		if want := int64(6 + i); it.Ts != want {
			t.Fatalf("item %d ts = %d, want %d (newest survive)", i, it.Ts, want)
		}
	}
	if got := sub.Shed(); got != 6 {
		t.Fatalf("shed = %d, want 6", got)
	}
	if got := reg.Counter("serve.sub.lag.shed").Value(); got != 6 {
		t.Fatalf("shed counter = %d, want 6", got)
	}
	if got := reg.Counter("serve.sub.lag.delivered").Value(); got != 4 {
		t.Fatalf("delivered counter = %d, want 4", got)
	}
	infos := h.Subscribers()
	if len(infos) != 1 || infos[0].ID != "lag" || infos[0].Shed != 6 || infos[0].Policy != "drop-oldest" {
		t.Fatalf("Subscribers() = %+v", infos)
	}
}

func TestHubDisconnectPolicyKills(t *testing.T) {
	h := NewHub(nil, 16, load.DropOldest)
	h.RegisterStream("s", nil)
	sub, err := h.Subscribe("strict", "ISTREAM (SELECT v FROM s [NOW])", 1, load.Disconnect)
	if err != nil {
		t.Fatal(err)
	}
	killed := false
	sub.OnKill(func() { killed = true })
	h.publishRecord("s", 1, row(1))
	h.publishRecord("s", 2, row(2)) // overflow -> kill
	if !killed {
		t.Fatal("OnKill not fired on overflow under disconnect policy")
	}
	d := sub.next()
	if !d.killed {
		t.Fatalf("delivery not marked killed: %+v", d)
	}
	if len(d.items) != 1 || d.items[0].Ts != 1 {
		t.Fatalf("disconnect policy should keep the contiguous prefix, got %+v", d.items)
	}
}

func TestHubSubscribeErrors(t *testing.T) {
	h := NewHub(nil, 16, load.DropOldest)
	h.RegisterStream("s", nil)
	check := func(name, query, wantCode string) {
		t.Helper()
		_, err := h.Subscribe(name, query, 0, load.DropOldest)
		se, ok := err.(*Error)
		if !ok || se.Code != wantCode {
			t.Fatalf("Subscribe(%q) err = %v, want code %s", query, err, wantCode)
		}
	}
	check("bad", "SELEKT nope", CodeSyntax)
	check("ghost", "ISTREAM (SELECT v FROM nosuch [NOW])", CodeUndefinedStream)
	if _, err := h.Subscribe("dup", "ISTREAM (SELECT v FROM s [NOW])", 0, load.DropOldest); err != nil {
		t.Fatal(err)
	}
	check("dup", "ISTREAM (SELECT v FROM s [NOW])", CodeDuplicate)
	h.Close()
	check("late", "ISTREAM (SELECT v FROM s [NOW])", CodeShutdown)
}

func TestHubCloseCancelsSubscriptions(t *testing.T) {
	h := NewHub(nil, 16, load.DropOldest)
	h.RegisterStream("s", nil)
	sub, err := h.Subscribe("x", "ISTREAM (SELECT v FROM s [NOW])", 0, load.DropOldest)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan delivery, 1)
	go func() { done <- sub.next() }()
	h.Close()
	if d := <-done; !d.closed {
		t.Fatalf("blocked consumer not released on Close: %+v", d)
	}
	// Taps stay valid after Close; publishing is a no-op.
	h.publishRecord("s", 1, row(1))
	if n := len(h.Subscribers()); n != 0 {
		t.Fatalf("%d subscribers survived Close", n)
	}
}
