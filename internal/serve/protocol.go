// Package serve is the stream SQL front door (§4.2): a TCP server where
// external clients submit continuous CQL queries over a RUNNING job's tapped
// streams, receive the resulting delta stream, and point-query queryable
// state — all over one connection. The job never blocks on a client: every
// subscription owns a bounded queue with a load-shedding overflow policy, so
// a stalled consumer sheds (or is disconnected) while the pipeline's own
// output stays byte-identical to an unserved run.
package serve

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/cql"
)

// SQLSTATE-style error codes carried on error frames. Clients switch on the
// class, not the message text.
const (
	// CodeSyntax — the CQL text failed to parse or validate (42601).
	CodeSyntax = "42601"
	// CodeUndefinedStream — the query references a stream (or point query a
	// table) the server does not serve (42P01).
	CodeUndefinedStream = "42P01"
	// CodeDuplicate — the subscription id is already in use on this
	// connection (42710).
	CodeDuplicate = "42710"
	// CodeInvalidParam — a request parameter is out of range or malformed
	// (22023).
	CodeInvalidParam = "22023"
	// CodeProtocol — the frame stream itself is broken: oversized frame,
	// invalid JSON, missing required field (08P01).
	CodeProtocol = "08P01"
	// CodeShutdown — the server is closing; the connection will drop (57P01).
	CodeShutdown = "57P01"
	// CodeSlowConsumer — the subscription's disconnect overflow policy
	// tripped: the client fell too far behind and asked to fail loudly
	// rather than see gaps (53400).
	CodeSlowConsumer = "53400"
	// CodeUnknownOp — the request op is not implemented (0A000).
	CodeUnknownOp = "0A000"
)

// Error is a coded serve-layer error; the code travels on the wire.
type Error struct {
	Code string
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Code, e.Msg) }

func errf(code, format string, args ...any) *Error {
	return &Error{Code: code, Msg: fmt.Sprintf(format, args...)}
}

// Request is the client->server message. Seq correlates the reply; it must
// be non-zero and should increase.
type Request struct {
	Seq uint64 `json:"seq"`
	// Op selects the action: "subscribe", "unsubscribe", "get", "keys",
	// "tables", "describe", "ping".
	Op string `json:"op"`
	// ID names a subscription (client-chosen, unique per connection).
	ID string `json:"id,omitempty"`
	// Query is the CQL text for subscribe.
	Query string `json:"query,omitempty"`
	// Buffer overrides the subscription's queue capacity (0 = server
	// default).
	Buffer int `json:"buffer,omitempty"`
	// Policy overrides the overflow policy: "drop-oldest" (default),
	// "drop-newest" or "disconnect".
	Policy string `json:"policy,omitempty"`
	// Table and Key address point queries.
	Table string `json:"table,omitempty"`
	Key   string `json:"key,omitempty"`
}

// Frame is every server->client message. Reply frames echo the request's Seq
// and Op; asynchronous stream frames have Seq 0 and carry the subscription ID
// with Op "delta", "watermark", "eos" or "error".
type Frame struct {
	Seq uint64 `json:"seq,omitempty"`
	Op  string `json:"op"`
	ID  string `json:"id,omitempty"`

	// Point-query / describe reply payloads.
	Found   bool     `json:"found,omitempty"`
	Value   any      `json:"value,omitempty"`
	Keys    []string `json:"keys,omitempty"`
	Streams []string `json:"streams,omitempty"`
	Tables  []string `json:"tables,omitempty"`

	// Delta payload ("insert" | "delete") and event-time progress.
	Kind      string  `json:"kind,omitempty"`
	Ts        int64   `json:"ts,omitempty"`
	Row       cql.Row `json:"row,omitempty"`
	Watermark int64   `json:"watermark,omitempty"`
	// Shed reports the subscription's total shed count (on eos frames).
	Shed int64 `json:"shed,omitempty"`

	// Error payload: a SQLSTATE-style code plus human-readable detail.
	Code string `json:"code,omitempty"`
	Err  string `json:"err,omitempty"`
}

// maxFrame bounds one frame's JSON body; a length prefix beyond it is a
// protocol violation, not an allocation request.
const maxFrame = 1 << 20

// writeFrame writes one length-prefixed JSON frame: 4-byte big-endian body
// length, then the body.
func writeFrame(w io.Writer, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("serve: marshal frame: %w", err)
	}
	if len(body) > maxFrame {
		return fmt.Errorf("serve: frame too large (%d bytes)", len(body))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

// readFrame reads one length-prefixed JSON frame into v.
func readFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return fmt.Errorf("serve: frame length %d exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return err
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("serve: decode frame: %w", err)
	}
	return nil
}
