package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/cql"
	"repro/internal/load"
	"repro/internal/metrics"
	"repro/internal/obsv"
	"repro/internal/queryable"
)

func testEvents(n int) []core.Event {
	evs := make([]core.Event, n)
	for i := range evs {
		evs[i] = core.Event{Key: fmt.Sprintf("k%d", i%3), Timestamp: int64(i * 10), Value: int64(i)}
	}
	return evs
}

func extractKV(e core.Event) (cql.Row, bool) {
	return cql.Row{"k": e.Key, "v": e.Value.(int64)}, true
}

// buildTapped builds the standard test pipeline (slice source -> optional
// tap -> collect sink) without running it.
func buildTapped(t *testing.T, n int, tap core.Tap) (*core.Job, *core.CollectSink) {
	t.Helper()
	sink := core.NewCollectSink()
	b := core.NewBuilder(core.Config{Name: "serve-test", WatermarkInterval: 16})
	s := b.Source("src", core.NewSliceSourceFactory(testEvents(n)), core.WithBoundedDisorder(0))
	if tap != nil {
		s = s.TapInto("tap", tap)
	}
	s.Sink("out", sink.Factory())
	job, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return job, sink
}

func runJob(t *testing.T, job *core.Job) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := job.Run(ctx); err != nil {
		t.Fatal(err)
	}
}

// collect drains a subscription until its channel closes, splitting deltas
// from the terminal frame.
func collect(sub *ClientSub) (deltas []*Frame, terminal *Frame) {
	for f := range sub.Frames {
		switch f.Op {
		case "delta":
			deltas = append(deltas, f)
		case "eos", "error":
			terminal = f
		}
	}
	return deltas, terminal
}

// The front-door happy path: N TCP clients subscribe the same continuous
// query over a running job and every one of them sees the identical delta
// stream, ending in a clean eos on job drain.
func TestServeMultipleSubscribersIdenticalDeltas(t *testing.T) {
	srv := NewServer(Options{})
	tap := srv.RegisterStream("s", extractKV)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	job, _ := buildTapped(t, 120, tap)

	const nClients = 3
	var clients [nClients]*Client
	var subs [nClients]*ClientSub
	for i := range clients {
		c, err := Dial(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		sub, err := c.Subscribe("q", "ISTREAM (SELECT k, v FROM s [NOW])", SubscribeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		clients[i], subs[i] = c, sub
	}

	runJob(t, job)

	var first []*Frame
	for i, sub := range subs {
		deltas, terminal := collect(sub)
		if terminal == nil || terminal.Op != "eos" {
			t.Fatalf("client %d: no eos terminal, got %+v", i, terminal)
		}
		if terminal.Shed != 0 {
			t.Fatalf("client %d shed %d records with no lag", i, terminal.Shed)
		}
		if len(deltas) != 120 {
			t.Fatalf("client %d got %d deltas, want 120", i, len(deltas))
		}
		for j, d := range deltas {
			if d.Kind != "insert" || d.Ts != int64(j*10) ||
				d.Row["v"].(float64) != float64(j) || d.Row["k"].(string) != fmt.Sprintf("k%d", j%3) {
				t.Fatalf("client %d delta %d = %+v", i, j, d)
			}
		}
		if i == 0 {
			first = deltas
			continue
		}
		for j := range deltas {
			a, _ := json.Marshal(first[j])
			b, _ := json.Marshal(deltas[j])
			if string(a) != string(b) {
				t.Fatalf("client %d delta %d diverged: %s vs %s", i, j, b, a)
			}
		}
	}
}

// A stalled subscriber sheds on its own bounded queue — with counters to
// prove it — while the job's sink output stays byte-identical to a run with
// no serving layer at all.
func TestServeStalledSubscriberDoesNotPerturbJob(t *testing.T) {
	reg := metrics.NewRegistry()
	srv := NewServer(Options{Registry: reg})
	tap := srv.RegisterStream("s", extractKV)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Healthy TCP subscriber with ample buffer.
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	healthy, err := c.Subscribe("ok", "ISTREAM (SELECT k, v FROM s [NOW])", SubscribeOptions{Buffer: 4096})
	if err != nil {
		t.Fatal(err)
	}
	// Stalled in-process subscriber: tiny queue, never drained.
	stalled, err := srv.Hub().Subscribe("stalled", "ISTREAM (SELECT k, v FROM s [NOW])", 8, load.DropOldest)
	if err != nil {
		t.Fatal(err)
	}

	job, sink := buildTapped(t, 500, tap)
	runJob(t, job)

	deltas, terminal := collect(healthy)
	if len(deltas) != 500 || terminal == nil || terminal.Op != "eos" {
		t.Fatalf("healthy subscriber: %d deltas, terminal %+v", len(deltas), terminal)
	}
	if got := stalled.Shed(); got != 500-8 {
		t.Fatalf("stalled subscriber shed %d, want %d (all but its 8-slot queue)", got, 500-8)
	}
	if got := reg.Counter("serve.sub.stalled.shed").Value(); got != 500-8 {
		t.Fatalf("shed counter = %d", got)
	}
	infos := srv.Subscribers()
	if len(infos) != 1 || infos[0].ID != "stalled" || infos[0].Shed != 500-8 || infos[0].QueueDepth != 8 {
		t.Fatalf("Subscribers() = %+v", infos)
	}
	// The /jobs integration: subscriber info rides on JobInfo and the field
	// disappears entirely for jobs without a serving layer.
	withSubs, _ := json.Marshal(obsv.JobInfo{Name: "j", Subscribers: infos})
	if !strings.Contains(string(withSubs), `"subscribers"`) || !strings.Contains(string(withSubs), `"stalled"`) {
		t.Fatalf("JobInfo JSON missing subscribers: %s", withSubs)
	}
	if plain, _ := json.Marshal(obsv.JobInfo{Name: "j"}); strings.Contains(string(plain), "subscribers") {
		t.Fatalf("empty subscriber list not omitted: %s", plain)
	}

	// Byte-identical pipeline output vs a run with no tap, no server.
	ref, refSink := buildTapped(t, 500, nil)
	runJob(t, ref)
	got, want := sink.SortedByTimestamp(), refSink.SortedByTimestamp()
	if len(got) != len(want) {
		t.Fatalf("served run emitted %d events, unserved %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("served pipeline output diverged at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

// Point queries and a live subscription share one connection while the job
// is running and publishing snapshots (run with -race).
func TestServePointQueryDuringLiveUpdates(t *testing.T) {
	svc := queryable.NewService()
	srv := NewServer(Options{Service: svc})
	tap := srv.RegisterStream("s", extractKV)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	sink := core.NewCollectSink()
	b := core.NewBuilder(core.Config{Name: "serve-qs", WatermarkInterval: 16})
	s := b.Source("src", core.NewSliceSourceFactory(testEvents(300)), core.WithBoundedDisorder(0)).
		TapInto("tap", tap).
		KeyBy(func(e core.Event) string { return e.Key })
	queryable.PublishOperator(s, "count", svc, "counts", "n", func(e core.Event, ctx core.Context) {
		st := ctx.State().Value("n")
		n := int64(0)
		if v, ok := st.Get(); ok {
			n = v.(int64)
		}
		st.Set(n + 1)
	}).Sink("out", sink.Factory())
	job, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sub, err := c.Subscribe("live", "ISTREAM (SELECT k, v FROM s [NOW])", SubscribeOptions{Buffer: 1024})
	if err != nil {
		t.Fatal(err)
	}

	// Drain the subscription concurrently — a reply and a delta share the
	// connection, so a consumer that stops draining its subscription would
	// stall its own point queries behind a full channel.
	type subResult struct {
		deltas   []*Frame
		terminal *Frame
	}
	collected := make(chan subResult, 1)
	go func() {
		d, term := collect(sub)
		collected <- subResult{d, term}
	}()

	done := make(chan struct{})
	go func() { defer close(done); runJob(t, job) }()
	// Hammer point queries over the same connection while deltas stream.
	for i := 0; ; i++ {
		if _, _, err := c.Get("counts", fmt.Sprintf("k%d", i%3)); err != nil {
			t.Fatal(err)
		}
		select {
		case <-done:
		default:
			continue
		}
		break
	}

	result := <-collected
	deltas, terminal := result.deltas, result.terminal
	if len(deltas) != 300 || terminal == nil || terminal.Op != "eos" {
		t.Fatalf("live subscription: %d deltas, terminal %+v", len(deltas), terminal)
	}
	total := 0.0
	for i := 0; i < 3; i++ {
		v, found, err := c.Get("counts", fmt.Sprintf("k%d", i))
		if err != nil || !found {
			t.Fatalf("final get k%d: %v %v", i, found, err)
		}
		total += v.(float64)
	}
	if total != 300 {
		t.Fatalf("final counts sum = %v, want 300", total)
	}
	tables, err := c.Tables()
	if err != nil || len(tables) != 1 || tables[0] != "counts" {
		t.Fatalf("tables: %v %v", tables, err)
	}
	keys, err := c.Keys("counts")
	if err != nil || len(keys) != 3 {
		t.Fatalf("keys: %v %v", keys, err)
	}
	streams, qtables, err := c.Describe()
	if err != nil || len(streams) != 1 || streams[0] != "s" || len(qtables) != 1 {
		t.Fatalf("describe: %v %v %v", streams, qtables, err)
	}
}

// A TCP consumer that stops reading under the disconnect policy gets evicted
// — and the producer (the tap) never blocks while that happens.
func TestServeDisconnectEvictsJammedConsumer(t *testing.T) {
	reg := metrics.NewRegistry()
	srv := NewServer(Options{Registry: reg})
	tap := srv.RegisterStream("s", extractKV)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Raw connection: subscribe, then never read again.
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := writeFrame(conn, &Request{Seq: 1, Op: "subscribe", ID: "jam",
		Query: "ISTREAM (SELECT k, v FROM s [NOW])", Buffer: 1, Policy: "disconnect"}); err != nil {
		t.Fatal(err)
	}
	var ack Frame
	if err := readFrame(conn, &ack); err != nil || ack.Op != "subscribe" {
		t.Fatalf("subscribe ack: %+v %v", ack, err)
	}

	// Produce until the eviction lands; each OnRecord returns immediately —
	// a blocked producer would time the test out, which IS the failure mode
	// this guards against.
	deadline := time.Now().Add(20 * time.Second)
	for i := 0; ; i++ {
		tap.OnRecord(core.Event{Key: "k", Timestamp: int64(i), Value: int64(i)})
		if i%512 == 0 {
			if len(srv.Subscribers()) == 0 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatal("jammed disconnect-policy subscriber never evicted")
			}
		}
	}
	if got := reg.Counter("serve.sub.c1.jam.shed").Value(); got == 0 {
		t.Fatal("disconnect eviction left shed counter at 0")
	}
	// The tap stays usable for remaining (zero) subscribers and shutdown is
	// clean.
	tap.OnRecord(core.Event{Key: "k", Timestamp: 0, Value: int64(0)})
	tap.OnEOS()
}

func TestServeProtocolAndParamErrors(t *testing.T) {
	srv := NewServer(Options{}) // no queryable service attached
	srv.RegisterStream("s", extractKV)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	wantCode := func(err error, code string) {
		t.Helper()
		se, ok := err.(*Error)
		if !ok || se.Code != code {
			t.Fatalf("err = %v, want code %s", err, code)
		}
	}
	_, err = c.Subscribe("a", "SELEKT", SubscribeOptions{})
	wantCode(err, CodeSyntax)
	_, err = c.Subscribe("b", "ISTREAM (SELECT v FROM ghost [NOW])", SubscribeOptions{})
	wantCode(err, CodeUndefinedStream)
	_, err = c.Subscribe("c", "ISTREAM (SELECT v FROM s [NOW])", SubscribeOptions{Policy: "yolo"})
	wantCode(err, CodeInvalidParam)
	if _, err = c.Subscribe("d", "ISTREAM (SELECT v FROM s [NOW])", SubscribeOptions{}); err != nil {
		t.Fatal(err)
	}
	_, err = c.Subscribe("d", "ISTREAM (SELECT v FROM s [NOW])", SubscribeOptions{})
	wantCode(err, CodeDuplicate)
	_, _, err = c.Get("t", "k")
	wantCode(err, CodeUnknownOp) // no service attached
	_, err = c.call(&Request{Op: "bogus"})
	wantCode(err, CodeUnknownOp)
	err = c.Unsubscribe("nope")
	wantCode(err, CodeUndefinedStream)
	if err := c.Unsubscribe("d"); err != nil {
		t.Fatal(err)
	}
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}

	// A zero seq is a protocol violation: coded frame, then disconnect.
	raw, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if err := writeFrame(raw, &Request{Seq: 0, Op: "ping"}); err != nil {
		t.Fatal(err)
	}
	var f Frame
	if err := readFrame(raw, &f); err != nil || f.Code != CodeProtocol {
		t.Fatalf("zero-seq response: %+v %v", f, err)
	}
	// Garbage bytes after a length prefix: 08P01 as well.
	raw2, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw2.Close()
	if _, err := raw2.Write([]byte{0, 0, 0, 2, '{', 'x'}); err != nil {
		t.Fatal(err)
	}
	if err := readFrame(raw2, &f); err != nil || f.Code != CodeProtocol {
		t.Fatalf("garbage frame response: %+v %v", f, err)
	}
}

// Server Close drains: subscribers get a shutdown signal and their channels
// close; the job-side taps survive.
func TestServeCloseDrainsSubscribers(t *testing.T) {
	srv := NewServer(Options{})
	tap := srv.RegisterStream("s", extractKV)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sub, err := c.Subscribe("q", "ISTREAM (SELECT k, v FROM s [NOW])", SubscribeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tap.OnRecord(core.Event{Key: "k0", Timestamp: 1, Value: int64(1)})
	if f := <-sub.Frames; f == nil || f.Op != "delta" {
		t.Fatalf("pre-close delta: %+v", f)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	for range sub.Frames {
		// drain whatever raced the shutdown; the closed channel ends this
	}
	if err := c.Ping(); err == nil {
		t.Fatal("ping succeeded against closed server")
	}
	// Taps outlive the front door.
	tap.OnRecord(core.Event{Key: "k0", Timestamp: 2, Value: int64(2)})
	tap.OnEOS()
}

// Subscribing mid-stream then hitting EOS with no records still ends in a
// clean eos frame.
func TestServeSubscribeThenImmediateEOS(t *testing.T) {
	srv := NewServer(Options{})
	tap := srv.RegisterStream("s", extractKV)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sub, err := c.Subscribe("q", "ISTREAM (SELECT k, v FROM s [NOW])", SubscribeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tap.OnEOS()
	deltas, terminal := collect(sub)
	if len(deltas) != 0 || terminal == nil || terminal.Op != "eos" || terminal.Shed != 0 {
		t.Fatalf("immediate EOS: %d deltas, terminal %+v", len(deltas), terminal)
	}
}
