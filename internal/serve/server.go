package serve

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/cql"
	"repro/internal/load"
	"repro/internal/metrics"
	"repro/internal/obsv"
	"repro/internal/queryable"
)

// Options configures a Server.
type Options struct {
	// Service answers point queries ("get"/"keys"/"tables"); nil rejects
	// them with 0A000.
	Service *queryable.Service
	// Registry receives per-subscriber counters (serve.sub.<id>.delivered,
	// .shed, .queue_depth) and the serve.subscribers gauge. Point it at the
	// job's registry to surface subscribers on /metrics; nil keeps them
	// private.
	Registry *metrics.Registry
	// DefaultBuffer is the per-subscription queue capacity when the client
	// does not choose one (0 selects 256).
	DefaultBuffer int
	// DefaultPolicy is the overflow policy for subscriptions that do not
	// choose one (zero value: drop-oldest).
	DefaultPolicy load.OverflowPolicy
}

// Server is the stream SQL front door: one TCP listener multiplexing
// continuous CQL subscriptions over a running job's tapped streams and point
// queries against queryable state, per connection. See package docs for the
// wire protocol.
type Server struct {
	opts Options
	hub  *Hub

	ln      net.Listener
	wg      sync.WaitGroup
	connMu  sync.Mutex
	conns   map[net.Conn]struct{}
	closed  bool
	connSeq atomic.Int64
}

// NewServer builds a server; attach streams with RegisterStream, then call
// Listen.
func NewServer(opts Options) *Server {
	return &Server{
		opts:  opts,
		hub:   NewHub(opts.Registry, opts.DefaultBuffer, opts.DefaultPolicy),
		conns: map[net.Conn]struct{}{},
	}
}

// RegisterStream names a stream clients may query and returns the core.Tap
// to attach with (*core.Stream).TapInto at the point the name should mean.
func (s *Server) RegisterStream(name string, extract func(core.Event) (cql.Row, bool)) core.Tap {
	return s.hub.RegisterStream(name, extract)
}

// Hub exposes the fan-out hub (for in-process subscriptions and /jobs
// integration via Hub.Subscribers).
func (s *Server) Hub() *Hub { return s.hub }

// Subscribers reports live subscription counters for obsv.JobInfo.
func (s *Server) Subscribers() []obsv.SubscriberInfo { return s.hub.Subscribers() }

// Listen binds addr ("127.0.0.1:0" picks a free port) and starts accepting.
func (s *Server) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("serve: listen: %w", err)
	}
	s.connMu.Lock()
	if s.closed {
		s.connMu.Unlock()
		ln.Close()
		return fmt.Errorf("serve: server is closed")
	}
	s.ln = ln
	s.wg.Add(1)
	s.connMu.Unlock()
	go s.acceptLoop(ln)
	return nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close drains the front door: stops accepting, sends a best-effort 57P01
// error frame on every connection, cancels all subscriptions and waits for
// the handlers to exit. The job and its taps keep running.
func (s *Server) Close() error {
	s.connMu.Lock()
	s.closed = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.connMu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	for _, c := range conns {
		// Best effort; the write races the client and may fail — the close
		// right after is what guarantees the handler unwinds.
		writeFrame(c, &Frame{Op: "error", Code: CodeShutdown, Err: "server shutting down"})
		c.Close()
	}
	s.hub.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.connMu.Lock()
		if s.closed {
			s.connMu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		// Add inside the critical section that checked closed, so it is
		// ordered against Close's closed=true store (same pattern as
		// queryable.Server).
		s.wg.Add(1)
		s.connMu.Unlock()
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// connState is one client connection: a reader goroutine (the handler), one
// pump goroutine per subscription, and a mutex-serialised writer they share.
type connState struct {
	srv  *Server
	conn net.Conn
	id   int64

	writeMu sync.Mutex
	w       *bufio.Writer

	subMu sync.Mutex
	subs  map[string]*Subscription // client-chosen id -> sub
	pumps sync.WaitGroup
}

// send writes one frame and flushes; concurrent-safe. A frame whose payload
// cannot be marshalled degrades to an error frame instead of tearing the
// stream (mirroring the queryable encode-failure fix).
func (c *connState) send(f *Frame) error {
	return c.sendBatch([]*Frame{f})
}

// sendBatch writes frames under one lock with a single flush — the pump's
// delivery batching: under load deliveries carry many records, so the
// per-frame syscall cost amortises exactly when throughput matters.
func (c *connState) sendBatch(frames []*Frame) error {
	if len(frames) == 0 {
		return nil
	}
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	for _, f := range frames {
		if err := writeFrame(c.w, f); err != nil {
			fallback := &Frame{Seq: f.Seq, Op: "error", ID: f.ID, Code: CodeInvalidParam,
				Err: fmt.Sprintf("response not serialisable: %v", err)}
			if err := writeFrame(c.w, fallback); err != nil {
				return err
			}
		}
	}
	return c.w.Flush()
}

func (s *Server) handle(conn net.Conn) {
	c := &connState{
		srv:  s,
		conn: conn,
		id:   s.connSeq.Add(1),
		w:    bufio.NewWriter(conn),
		subs: map[string]*Subscription{},
	}
	defer func() {
		// Cancel this connection's subscriptions so their pumps unwind, then
		// wait for them before releasing the conn.
		c.subMu.Lock()
		subs := make([]*Subscription, 0, len(c.subs))
		for _, sub := range c.subs {
			subs = append(subs, sub)
		}
		c.subMu.Unlock()
		for _, sub := range subs {
			sub.Cancel()
		}
		conn.Close()
		c.pumps.Wait()
		s.connMu.Lock()
		delete(s.conns, conn)
		s.connMu.Unlock()
	}()
	r := bufio.NewReader(conn)
	for {
		var req Request
		if err := readFrame(r, &req); err != nil {
			// Distinguish a clean disconnect from garbage: decode errors get
			// a protocol-violation frame before the connection drops.
			if isDecodeError(err) {
				c.send(&Frame{Op: "error", Code: CodeProtocol, Err: err.Error()})
			}
			return
		}
		if req.Seq == 0 {
			c.send(&Frame{Op: "error", Code: CodeProtocol, Err: "request seq must be non-zero"})
			return
		}
		c.dispatch(&req)
	}
}

func isDecodeError(err error) bool {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed) {
		return false
	}
	var ne net.Error
	return !errors.As(err, &ne)
}

func (c *connState) fail(req *Request, err error) {
	f := &Frame{Seq: req.Seq, Op: "error", ID: req.ID}
	if se, ok := err.(*Error); ok {
		f.Code, f.Err = se.Code, se.Msg
	} else {
		f.Code, f.Err = CodeInvalidParam, err.Error()
	}
	c.send(f)
}

func (c *connState) dispatch(req *Request) {
	switch req.Op {
	case "subscribe":
		c.subscribe(req)
	case "unsubscribe":
		c.unsubscribe(req)
	case "get":
		svc := c.srv.opts.Service
		if svc == nil {
			c.fail(req, errf(CodeUnknownOp, "no queryable service attached"))
			return
		}
		v, found := svc.Get(req.Table, req.Key)
		c.send(&Frame{Seq: req.Seq, Op: "get", Found: found, Value: v})
	case "keys":
		svc := c.srv.opts.Service
		if svc == nil {
			c.fail(req, errf(CodeUnknownOp, "no queryable service attached"))
			return
		}
		c.send(&Frame{Seq: req.Seq, Op: "keys", Keys: svc.Keys(req.Table), Found: true})
	case "tables":
		svc := c.srv.opts.Service
		if svc == nil {
			c.fail(req, errf(CodeUnknownOp, "no queryable service attached"))
			return
		}
		c.send(&Frame{Seq: req.Seq, Op: "tables", Tables: svc.Tables(), Found: true})
	case "describe":
		f := &Frame{Seq: req.Seq, Op: "describe", Streams: c.srv.hub.Streams()}
		if svc := c.srv.opts.Service; svc != nil {
			f.Tables = svc.Tables()
		}
		c.send(f)
	case "ping":
		c.send(&Frame{Seq: req.Seq, Op: "ping"})
	default:
		c.fail(req, errf(CodeUnknownOp, "unknown op %q", req.Op))
	}
}

func (c *connState) subscribe(req *Request) {
	if req.ID == "" {
		c.fail(req, errf(CodeInvalidParam, "subscribe requires an id"))
		return
	}
	policy := c.srv.opts.DefaultPolicy
	if req.Policy != "" {
		p, err := load.ParseOverflowPolicy(req.Policy)
		if err != nil {
			c.fail(req, errf(CodeInvalidParam, "%v", err))
			return
		}
		policy = p
	}
	c.subMu.Lock()
	if _, dup := c.subs[req.ID]; dup {
		c.subMu.Unlock()
		c.fail(req, errf(CodeDuplicate, "subscription id %q already in use on this connection", req.ID))
		return
	}
	// The hub-wide name prefixes the connection so ids only need to be
	// unique per connection.
	name := fmt.Sprintf("c%d.%s", c.id, req.ID)
	sub, err := c.srv.hub.Subscribe(name, req.Query, req.Buffer, policy)
	if err != nil {
		c.subMu.Unlock()
		c.fail(req, err)
		return
	}
	// Disconnect policy: closing the conn unwinds a pump stuck writing into
	// a jammed socket, which is exactly the slow consumer being evicted.
	sub.OnKill(func() { c.conn.Close() })
	c.subs[req.ID] = sub
	c.pumps.Add(1)
	c.subMu.Unlock()
	c.send(&Frame{Seq: req.Seq, Op: "subscribe", ID: req.ID})
	go c.pump(req.ID, sub)
}

func (c *connState) unsubscribe(req *Request) {
	c.subMu.Lock()
	sub, ok := c.subs[req.ID]
	if ok {
		delete(c.subs, req.ID)
	}
	c.subMu.Unlock()
	if !ok {
		c.fail(req, errf(CodeUndefinedStream, "no subscription %q on this connection", req.ID))
		return
	}
	sub.Cancel()
	c.send(&Frame{Seq: req.Seq, Op: "unsubscribe", ID: req.ID})
}

// pump drains one subscription: raw records push into the per-subscription
// executor (on THIS goroutine — an expensive query costs its subscriber, not
// the job) and the resulting deltas stream to the client.
func (c *connState) pump(clientID string, sub *Subscription) {
	defer c.pumps.Done()
	exec := sub.Exec()
	lastTs := int64(0)
	tsPrimed := false
	var frames []*Frame
	emit := func(outs []cql.Output) {
		for _, o := range outs {
			kind := "insert"
			if o.Kind == cql.Delete {
				kind = "delete"
			}
			frames = append(frames, &Frame{Op: "delta", ID: clientID, Kind: kind, Ts: o.Ts, Row: o.Row})
		}
	}
	for {
		d := sub.next()
		if d.closed {
			return
		}
		frames = frames[:0]
		for _, it := range d.items {
			// The executor needs non-decreasing timestamps; a tap placed
			// after a disordered source can violate that, so clamp (shedding
			// already makes subscriber views approximate under lag).
			ts := it.Ts
			if tsPrimed && ts < lastTs {
				ts = lastTs
			}
			lastTs, tsPrimed = ts, true
			outs, err := exec.Push(it.Stream, ts, it.Row)
			if err != nil {
				frames = append(frames, &Frame{Op: "error", ID: clientID, Code: CodeInvalidParam, Err: err.Error()})
				c.sendBatch(frames)
				c.dropSub(clientID, sub)
				return
			}
			emit(outs)
		}
		if d.wmSet {
			ts := d.wm
			if tsPrimed && ts < lastTs {
				ts = lastTs
			}
			lastTs, tsPrimed = ts, true
			outs, err := exec.AdvanceTo(ts)
			if err != nil {
				frames = append(frames, &Frame{Op: "error", ID: clientID, Code: CodeInvalidParam, Err: err.Error()})
				c.sendBatch(frames)
				c.dropSub(clientID, sub)
				return
			}
			emit(outs)
			frames = append(frames, &Frame{Op: "watermark", ID: clientID, Watermark: d.wm})
		}
		if d.killed {
			frames = append(frames, &Frame{Op: "error", ID: clientID, Code: CodeSlowConsumer,
				Err: "subscription fell behind with disconnect policy"})
			c.sendBatch(frames)
			c.dropSub(clientID, sub)
			return
		}
		if d.eos {
			frames = append(frames, &Frame{Op: "eos", ID: clientID, Shed: sub.Shed()})
			c.sendBatch(frames)
			c.dropSub(clientID, sub)
			return
		}
		if err := c.sendBatch(frames); err != nil {
			c.dropSub(clientID, sub)
			return
		}
	}
}

func (c *connState) dropSub(clientID string, sub *Subscription) {
	sub.Cancel()
	c.subMu.Lock()
	if cur, ok := c.subs[clientID]; ok && cur == sub {
		delete(c.subs, clientID)
	}
	c.subMu.Unlock()
}
