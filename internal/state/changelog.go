package state

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"
)

// ChangelogOp is one state mutation in a changelog.
type ChangelogOp struct {
	Name   string
	Key    string
	Value  any
	Delete bool
}

// Changelog is a replayable, append-only log of state mutations — the
// "externally managed state" architecture of §3.1 (Millwheel's Bigtable
// writes, Samza's and Kafka Streams' changelog topics). In production this
// log lives in a durable broker; here it is an in-process equivalent with
// the same contract: state can be reconstructed by replaying the log, and
// the log can be compacted to its latest-value-per-key form.
type Changelog struct {
	mu  sync.Mutex
	ops []ChangelogOp
}

// NewChangelog returns an empty log.
func NewChangelog() *Changelog { return &Changelog{} }

// Append adds a mutation to the log.
func (c *Changelog) Append(op ChangelogOp) {
	c.mu.Lock()
	c.ops = append(c.ops, op)
	c.mu.Unlock()
}

// Len returns the number of log records.
func (c *Changelog) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.ops)
}

// ReplayInto applies every record to the given backend.
func (c *Changelog) ReplayInto(b Backend) {
	c.mu.Lock()
	ops := append([]ChangelogOp(nil), c.ops...)
	c.mu.Unlock()
	for _, op := range ops {
		b.SetCurrentKey(op.Key)
		if op.Delete {
			b.Value(op.Name).Clear()
		} else {
			b.Value(op.Name).Set(op.Value)
		}
	}
}

// Compact rewrites the log keeping only the latest record per (name, key) —
// the semantics of a log-compacted Kafka topic.
func (c *Changelog) Compact() {
	c.mu.Lock()
	defer c.mu.Unlock()
	type nk struct{ name, key string }
	latest := make(map[nk]int, len(c.ops))
	for i, op := range c.ops {
		latest[nk{op.Name, op.Key}] = i
	}
	compacted := make([]ChangelogOp, 0, len(latest))
	for i, op := range c.ops {
		if latest[nk{op.Name, op.Key}] == i && !op.Delete {
			compacted = append(compacted, op)
		}
	}
	c.ops = compacted
}

// Encode serialises the log.
func (c *Changelog) Encode() ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(c.ops); err != nil {
		return nil, fmt.Errorf("state: encode changelog: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeChangelog deserialises a log.
func DecodeChangelog(data []byte) (*Changelog, error) {
	var ops []ChangelogOp
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&ops); err != nil {
		return nil, fmt.Errorf("state: decode changelog: %w", err)
	}
	return &Changelog{ops: ops}, nil
}

// ChangelogBackend wraps a MemoryBackend, mirroring every value-state
// mutation into a changelog. Recovery replays the changelog instead of
// restoring a snapshot, so the engine never ships state images — only the
// log handle — matching the externally-managed design point.
//
// Only ValueState writes are logged; List/Map/Reducing states delegate to
// the inner backend and are captured by Snapshot like the memory backend
// (real changelog systems serialise those as value blobs too; callers who
// need log-only recovery should model state as values).
type ChangelogBackend struct {
	*MemoryBackend
	log *Changelog
}

// NewChangelogBackend returns a backend writing through to log.
func NewChangelogBackend(numGroups int, log *Changelog) *ChangelogBackend {
	return &ChangelogBackend{MemoryBackend: NewMemoryBackend(numGroups), log: log}
}

// Log returns the underlying changelog.
func (b *ChangelogBackend) Log() *Changelog { return b.log }

// Value returns a write-through value state handle.
func (b *ChangelogBackend) Value(name string) ValueState {
	return &clValue{inner: b.MemoryBackend.Value(name), b: b, name: name}
}

type clValue struct {
	inner ValueState
	b     *ChangelogBackend
	name  string
}

func (s *clValue) Get() (any, bool) { return s.inner.Get() }

func (s *clValue) Set(v any) {
	s.inner.Set(v)
	s.b.log.Append(ChangelogOp{Name: s.name, Key: s.b.CurrentKey(), Value: v})
}

func (s *clValue) Clear() {
	s.inner.Clear()
	s.b.log.Append(ChangelogOp{Name: s.name, Key: s.b.CurrentKey(), Delete: true})
}

// RecoverFromLog rebuilds a fresh backend from the changelog alone.
func RecoverFromLog(numGroups int, log *Changelog) *ChangelogBackend {
	b := NewChangelogBackend(numGroups, NewChangelog())
	log.ReplayInto(b.MemoryBackend)
	b.log = log
	return b
}

var _ Backend = (*ChangelogBackend)(nil)
