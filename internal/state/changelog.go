package state

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"
)

// ChangelogOp is one state mutation in a changelog.
type ChangelogOp struct {
	Name   string
	Key    string
	Value  any
	Delete bool
}

// Changelog is a replayable, append-only log of state mutations — the
// "externally managed state" architecture of §3.1 (Millwheel's Bigtable
// writes, Samza's and Kafka Streams' changelog topics). In production this
// log lives in a durable broker; here it is an in-process equivalent with
// the same contract: state can be reconstructed by replaying the log, and
// the log can be compacted to its latest-value-per-key form.
type Changelog struct {
	mu  sync.Mutex
	ops []ChangelogOp
	// start is the absolute offset of ops[0]: truncation drops prefix records
	// subsumed by a completed checkpoint without disturbing absolute
	// positions handed out by AbsLen.
	start int64
}

// NewChangelog returns an empty log.
func NewChangelog() *Changelog { return &Changelog{} }

// Append adds a mutation to the log.
func (c *Changelog) Append(op ChangelogOp) {
	c.mu.Lock()
	c.ops = append(c.ops, op)
	c.mu.Unlock()
}

// Len returns the number of retained log records.
func (c *Changelog) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.ops)
}

// AbsLen returns the absolute count of records ever appended, including
// truncated ones. Checkpoints record this position; a completed checkpoint
// subsumes every record before the position it captured.
func (c *Changelog) AbsLen() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.start + int64(len(c.ops))
}

// TruncateTo drops records below absolute position abs — those whose effects
// are already captured by a completed checkpoint. Without truncation the log
// grows without bound between explicit folds.
func (c *Changelog) TruncateTo(abs int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	drop := abs - c.start
	if drop <= 0 {
		return
	}
	if drop > int64(len(c.ops)) {
		drop = int64(len(c.ops))
	}
	c.ops = append([]ChangelogOp(nil), c.ops[drop:]...)
	c.start += drop
}

// ReplayInto applies every record to the given backend.
func (c *Changelog) ReplayInto(b Backend) {
	c.mu.Lock()
	ops := append([]ChangelogOp(nil), c.ops...)
	c.mu.Unlock()
	for _, op := range ops {
		b.SetCurrentKey(op.Key)
		if op.Delete {
			b.Value(op.Name).Clear()
		} else {
			b.Value(op.Name).Set(op.Value)
		}
	}
}

// Compact rewrites the log keeping only the latest record per (name, key) —
// the semantics of a log-compacted Kafka topic.
func (c *Changelog) Compact() {
	c.mu.Lock()
	defer c.mu.Unlock()
	type nk struct{ name, key string }
	latest := make(map[nk]int, len(c.ops))
	for i, op := range c.ops {
		latest[nk{op.Name, op.Key}] = i
	}
	compacted := make([]ChangelogOp, 0, len(latest))
	for i, op := range c.ops {
		if latest[nk{op.Name, op.Key}] == i && !op.Delete {
			compacted = append(compacted, op)
		}
	}
	c.ops = compacted
}

// Encode serialises the log.
func (c *Changelog) Encode() ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(c.ops); err != nil {
		return nil, fmt.Errorf("state: encode changelog: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeChangelog deserialises a log.
func DecodeChangelog(data []byte) (*Changelog, error) {
	var ops []ChangelogOp
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&ops); err != nil {
		return nil, fmt.Errorf("state: decode changelog: %w", err)
	}
	return &Changelog{ops: ops}, nil
}

// ChangelogBackend wraps a MemoryBackend, mirroring every value-state
// mutation into a changelog. Recovery replays the changelog instead of
// restoring a snapshot, so the engine never ships state images — only the
// log handle — matching the externally-managed design point.
//
// Only ValueState writes are logged; List/Map/Reducing states delegate to
// the inner backend and are captured by Snapshot like the memory backend
// (real changelog systems serialise those as value blobs too; callers who
// need log-only recovery should model state as values).
type ChangelogBackend struct {
	*MemoryBackend
	log *Changelog
	// logMarks maps checkpoint id -> the log's absolute length when that
	// checkpoint was captured. When a later delta confirms a checkpoint
	// completed (the coordinator only bases deltas on completed checkpoints),
	// records below its mark are truncated — they are subsumed.
	logMarks map[int64]int64
}

// NewChangelogBackend returns a backend writing through to log.
func NewChangelogBackend(numGroups int, log *Changelog) *ChangelogBackend {
	return &ChangelogBackend{
		MemoryBackend: NewMemoryBackend(numGroups),
		log:           log,
		logMarks:      make(map[int64]int64),
	}
}

// Log returns the underlying changelog.
func (b *ChangelogBackend) Log() *Changelog { return b.log }

// Value returns a write-through value state handle.
func (b *ChangelogBackend) Value(name string) ValueState {
	return &clValue{inner: b.MemoryBackend.Value(name), b: b, name: name}
}

type clValue struct {
	inner ValueState
	b     *ChangelogBackend
	name  string
}

func (s *clValue) Get() (any, bool) { return s.inner.Get() }

func (s *clValue) Set(v any) {
	s.inner.Set(v)
	s.b.log.Append(ChangelogOp{Name: s.name, Key: s.b.CurrentKey(), Value: v})
}

func (s *clValue) Clear() {
	s.inner.Clear()
	s.b.log.Append(ChangelogOp{Name: s.name, Key: s.b.CurrentKey(), Delete: true})
}

// SnapshotDelta captures a delta via the embedded memory backend and, since
// base is known completed, truncates changelog records subsumed by it.
func (b *ChangelogBackend) SnapshotDelta(base, id int64) ([]byte, bool, error) {
	pos := b.log.AbsLen()
	data, ok, err := b.MemoryBackend.SnapshotDelta(base, id)
	if !ok || err != nil {
		return data, ok, err
	}
	b.logMarks[id] = pos
	if mark, recorded := b.logMarks[base]; recorded {
		b.log.TruncateTo(mark)
		for cp := range b.logMarks {
			if cp < base {
				delete(b.logMarks, cp)
			}
		}
	}
	return data, true, nil
}

// MarkFull records the full-snapshot boundary and the log position captured
// with it.
func (b *ChangelogBackend) MarkFull(id int64) {
	b.MemoryBackend.MarkFull(id)
	if b.MemoryBackend.delta != nil {
		b.logMarks[id] = b.log.AbsLen()
	}
}

// RecoverFromLog rebuilds a fresh backend from the changelog alone.
func RecoverFromLog(numGroups int, log *Changelog) *ChangelogBackend {
	b := NewChangelogBackend(numGroups, NewChangelog())
	log.ReplayInto(b.MemoryBackend)
	b.log = log
	return b
}

var _ Backend = (*ChangelogBackend)(nil)
