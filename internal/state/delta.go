package state

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
)

// DeltaBackend is implemented by backends that can serialize only the state
// changed since a previous checkpoint — the delta-checkpoint contract. The
// coordinator picks the base (always the last *completed* checkpoint) so a
// delta's parent is guaranteed restorable; the backend merely has to know
// which (name, key) slots were touched since that base.
type DeltaBackend interface {
	// SnapshotDelta serializes the state changed since checkpoint base, as of
	// checkpoint id. ok=false means the backend cannot produce a delta from
	// that base (tracking off, base predates tracking, or base was pruned);
	// the caller must fall back to a full snapshot and call MarkFull.
	SnapshotDelta(base, id int64) (data []byte, ok bool, err error)
	// MarkFull records that checkpoint id was captured as a full snapshot, so
	// later deltas based on id serialize only changes after this point.
	MarkFull(id int64)
	// ApplyDelta replays a delta payload on top of current contents.
	ApplyDelta(data []byte) error
	// SetDeltaTracking enables or disables change tracking. Off (the default)
	// costs nothing on the write path.
	SetDeltaTracking(on bool)
}

// FileBackend is implemented by backends whose state lives in immutable
// files that a checkpoint can reference directly (RocksDB-style incremental
// checkpoints): instead of serializing values, the checkpoint links the
// backend's current file set.
type FileBackend interface {
	// SnapshotFiles makes the current state durable (flush + fsync) and
	// returns the immutable files composing it.
	SnapshotFiles() ([]string, error)
	// RestoreFromFiles replaces backend contents with the given files.
	RestoreFromFiles(paths []string) error
}

// dirtyKey identifies one mutated state slot.
type dirtyKey struct{ name, key string }

// maxDeltaEpochs bounds the tracker's closed-epoch list. Epochs are merged
// (oldest two coalesced) past this; merging only over-approximates a later
// delta, never loses a change.
const maxDeltaEpochs = 64

// deltaTracker records which state slots changed, bucketed into epochs
// closed at each checkpoint attempt. marks maps checkpoint id -> absolute
// epoch boundary: the delta from base to now is the union of every epoch at
// or after marks[base].
type deltaTracker struct {
	cur    map[dirtyKey]struct{}   // open epoch, mutations since last checkpoint attempt
	seq    []map[dirtyKey]struct{} // closed epochs; seq[0] is absolute position offset
	marks  map[int64]int           // checkpoint id -> absolute boundary into seq
	offset int                     // absolute position of seq[0]
}

func newDeltaTracker() *deltaTracker {
	return &deltaTracker{cur: make(map[dirtyKey]struct{}), marks: make(map[int64]int)}
}

func (d *deltaTracker) touch(name, key string) {
	d.cur[dirtyKey{name, key}] = struct{}{}
}

// closeEpoch moves the open epoch onto seq, coalescing the oldest epochs
// when the list exceeds its bound. Coalescing maps boundaries conservatively
// downward, so a base whose exact boundary was merged away over-captures.
func (d *deltaTracker) closeEpoch() {
	d.seq = append(d.seq, d.cur)
	d.cur = make(map[dirtyKey]struct{})
	if len(d.seq) > maxDeltaEpochs {
		for k := range d.seq[1] {
			d.seq[0][k] = struct{}{}
		}
		d.seq = append(d.seq[:1], d.seq[2:]...)
		d.offset++ // absolute positions <= offset now clamp to seq[0]
	}
}

// capture closes the open epoch and returns the union of changes since
// checkpoint base, recording id's boundary. ok=false when base is unknown.
// Because the coordinator only bases deltas on the latest completed
// checkpoint, and completions are monotone, everything before base's
// boundary can be pruned.
func (d *deltaTracker) capture(base, id int64) (map[dirtyKey]struct{}, bool) {
	abs, ok := d.marks[base]
	if !ok {
		return nil, false
	}
	d.closeEpoch()
	rel := abs - d.offset
	if rel < 0 {
		rel = 0 // boundary merged away by coalescing: over-capture
	}
	union := make(map[dirtyKey]struct{})
	for _, epoch := range d.seq[rel:] {
		for k := range epoch {
			union[k] = struct{}{}
		}
	}
	d.marks[id] = d.offset + len(d.seq)
	d.seq = append([]map[dirtyKey]struct{}(nil), d.seq[rel:]...)
	d.offset += rel
	for cp := range d.marks {
		if cp < base {
			delete(d.marks, cp)
		}
	}
	return union, true
}

// markFull closes the open epoch and records id's boundary without pruning:
// a full capture may still be aborted, and a later delta from an older base
// must not have lost the dirt recorded before it.
func (d *deltaTracker) markFull(id int64) {
	d.closeEpoch()
	d.marks[id] = d.offset + len(d.seq)
}

// EncodeDeltaOps serialises a delta payload (the same op format as the
// changelog: state = fold(ops)).
func EncodeDeltaOps(ops []ChangelogOp) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(ops); err != nil {
		return nil, fmt.Errorf("state: encode delta: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeDeltaOps deserialises a delta payload.
func DecodeDeltaOps(data []byte) ([]ChangelogOp, error) {
	var ops []ChangelogOp
	if len(data) == 0 {
		return nil, nil
	}
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&ops); err != nil {
		return nil, fmt.Errorf("state: decode delta: %w", err)
	}
	return ops, nil
}

// deltaOpsFor turns a dirty set into ops by reading current values through
// get: present -> Set, absent -> Delete. Sorted for deterministic payloads.
func deltaOpsFor(dirty map[dirtyKey]struct{}, get func(name, key string) (any, bool)) []ChangelogOp {
	keys := make([]dirtyKey, 0, len(dirty))
	for dk := range dirty {
		keys = append(keys, dk)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].name != keys[j].name {
			return keys[i].name < keys[j].name
		}
		return keys[i].key < keys[j].key
	})
	ops := make([]ChangelogOp, 0, len(keys))
	for _, dk := range keys {
		if v, ok := get(dk.name, dk.key); ok {
			ops = append(ops, ChangelogOp{Name: dk.name, Key: dk.key, Value: v})
		} else {
			ops = append(ops, ChangelogOp{Name: dk.name, Key: dk.key, Delete: true})
		}
	}
	return ops
}

// --- MemoryBackend delta support ---

// SetDeltaTracking enables change tracking on the write path.
func (b *MemoryBackend) SetDeltaTracking(on bool) {
	if on && b.delta == nil {
		b.delta = newDeltaTracker()
	} else if !on {
		b.delta = nil
	}
}

// SnapshotDelta serialises only the slots changed since checkpoint base.
func (b *MemoryBackend) SnapshotDelta(base, id int64) ([]byte, bool, error) {
	if b.delta == nil {
		return nil, false, nil
	}
	dirty, ok := b.delta.capture(base, id)
	if !ok {
		return nil, false, nil
	}
	data, err := EncodeDeltaOps(deltaOpsFor(dirty, b.get))
	if err != nil {
		return nil, false, err
	}
	return data, true, nil
}

// MarkFull records a full-snapshot boundary for later deltas.
func (b *MemoryBackend) MarkFull(id int64) {
	if b.delta != nil {
		b.delta.markFull(id)
	}
}

// ApplyDelta replays a delta payload on top of current contents.
func (b *MemoryBackend) ApplyDelta(data []byte) error {
	ops, err := DecodeDeltaOps(data)
	if err != nil {
		return err
	}
	for _, op := range ops {
		if op.Delete {
			b.del(op.Name, op.Key)
		} else {
			b.put(op.Name, op.Key, op.Value)
		}
	}
	b.invalidateHandles()
	return nil
}

var _ DeltaBackend = (*MemoryBackend)(nil)

// --- LSMBackend delta support ---

// SetDeltaTracking enables change tracking on the write path.
func (b *LSMBackend) SetDeltaTracking(on bool) {
	if on && b.delta == nil {
		b.delta = newDeltaTracker()
	} else if !on {
		b.delta = nil
	}
}

// SnapshotDelta serialises only the slots changed since checkpoint base. The
// WAL is synced first so a completed checkpoint never references writes the
// OS hasn't persisted.
func (b *LSMBackend) SnapshotDelta(base, id int64) ([]byte, bool, error) {
	if b.delta == nil {
		return nil, false, nil
	}
	if err := b.tree.SyncWAL(); err != nil {
		return nil, false, err
	}
	dirty, ok := b.delta.capture(base, id)
	if !ok {
		return nil, false, nil
	}
	data, err := EncodeDeltaOps(deltaOpsFor(dirty, b.get))
	if err != nil {
		return nil, false, err
	}
	return data, true, nil
}

// MarkFull records a full-snapshot boundary for later deltas.
func (b *LSMBackend) MarkFull(id int64) {
	if b.delta != nil {
		b.delta.markFull(id)
	}
}

// ApplyDelta replays a delta payload on top of current contents.
func (b *LSMBackend) ApplyDelta(data []byte) error {
	ops, err := DecodeDeltaOps(data)
	if err != nil {
		return err
	}
	for _, op := range ops {
		if op.Delete {
			b.del(op.Name, op.Key)
		} else {
			b.put(op.Name, op.Key, op.Value)
		}
	}
	return nil
}

var _ DeltaBackend = (*LSMBackend)(nil)

// SnapshotFiles flushes the memtable and returns the immutable SSTables
// composing current state. Everything returned is fsynced (table writes and
// the directory entry), so a checkpoint may reference these files by name.
func (b *LSMBackend) SnapshotFiles() ([]string, error) {
	if err := b.tree.Flush(); err != nil {
		return nil, err
	}
	return b.tree.Manifest(), nil
}

// RestoreFromFiles replaces backend contents with the given SSTable files.
func (b *LSMBackend) RestoreFromFiles(paths []string) error {
	return b.tree.ReplaceWithFiles(paths)
}

var _ FileBackend = (*LSMBackend)(nil)
