package state

import (
	"fmt"
	"testing"
)

// snapshotEqual asserts two backends serialize to identical images.
func snapshotEqual(t *testing.T, a, b Backend) {
	t.Helper()
	sa, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	sb, err := b.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	ia, err := DecodeImage(sa)
	if err != nil {
		t.Fatal(err)
	}
	ib, err := DecodeImage(sb)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(ia) != fmt.Sprint(ib) {
		t.Fatalf("state diverged:\n a=%v\n b=%v", ia, ib)
	}
}

func TestMemoryDeltaRoundtrip(t *testing.T) {
	b := NewMemoryBackend(8)
	b.SetDeltaTracking(true)
	for i := 0; i < 50; i++ {
		b.SetCurrentKey(fmt.Sprintf("k%02d", i))
		b.Value("count").Set(int64(i))
	}
	full, err := b.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	b.MarkFull(1)

	// Mutate a small subset: update, delete, and a map write (which bypasses
	// the central put path).
	b.SetCurrentKey("k03")
	b.Value("count").Set(int64(1003))
	b.SetCurrentKey("k07")
	b.Value("count").Clear()
	b.SetCurrentKey("k09")
	b.Map("seen").Put("x", int64(9))

	delta, ok, err := b.SnapshotDelta(1, 2)
	if err != nil || !ok {
		t.Fatalf("SnapshotDelta: ok=%v err=%v", ok, err)
	}
	ops, err := DecodeDeltaOps(delta)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 3 {
		t.Fatalf("want 3 delta ops, got %d: %v", len(ops), ops)
	}

	restored := NewMemoryBackend(8)
	if err := restored.Restore(full); err != nil {
		t.Fatal(err)
	}
	if err := restored.ApplyDelta(delta); err != nil {
		t.Fatal(err)
	}
	snapshotEqual(t, b, restored)
}

func TestMemoryDeltaChain(t *testing.T) {
	b := NewMemoryBackend(4)
	b.SetDeltaTracking(true)
	write := func(key string, v int64) {
		b.SetCurrentKey(key)
		b.Value("v").Set(v)
	}
	write("a", 1)
	full, err := b.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	b.MarkFull(1)

	write("b", 2)
	d1, ok, err := b.SnapshotDelta(1, 2)
	if err != nil || !ok {
		t.Fatalf("delta 2: ok=%v err=%v", ok, err)
	}
	write("a", 10)
	write("c", 3)
	d2, ok, err := b.SnapshotDelta(2, 3)
	if err != nil || !ok {
		t.Fatalf("delta 3: ok=%v err=%v", ok, err)
	}
	ops2, _ := DecodeDeltaOps(d2)
	if len(ops2) != 2 {
		t.Fatalf("delta 3 must only carry changes since checkpoint 2, got %v", ops2)
	}

	restored := NewMemoryBackend(4)
	if err := restored.Restore(full); err != nil {
		t.Fatal(err)
	}
	for _, d := range [][]byte{d1, d2} {
		if err := restored.ApplyDelta(d); err != nil {
			t.Fatal(err)
		}
	}
	snapshotEqual(t, b, restored)
}

func TestDeltaUnknownBaseFallsBack(t *testing.T) {
	b := NewMemoryBackend(4)
	b.SetDeltaTracking(true)
	b.SetCurrentKey("k")
	b.Value("v").Set(int64(1))
	if _, ok, err := b.SnapshotDelta(99, 100); ok || err != nil {
		t.Fatalf("delta from unknown base must report ok=false (ok=%v err=%v)", ok, err)
	}
	// Tracking off entirely: same contract.
	off := NewMemoryBackend(4)
	if _, ok, _ := off.SnapshotDelta(1, 2); ok {
		t.Fatal("delta with tracking off must report ok=false")
	}
}

func TestDeltaSublinearInTotalState(t *testing.T) {
	const total, changed = 5000, 10
	b := NewMemoryBackend(16)
	b.SetDeltaTracking(true)
	for i := 0; i < total; i++ {
		b.SetCurrentKey(fmt.Sprintf("key-%05d", i))
		b.Value("v").Set(int64(i))
	}
	full, err := b.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	b.MarkFull(1)
	for i := 0; i < changed; i++ {
		b.SetCurrentKey(fmt.Sprintf("key-%05d", i*37))
		b.Value("v").Set(int64(-1))
	}
	delta, ok, err := b.SnapshotDelta(1, 2)
	if err != nil || !ok {
		t.Fatalf("SnapshotDelta: ok=%v err=%v", ok, err)
	}
	if len(delta)*100 > len(full) {
		t.Fatalf("delta not sublinear: %d bytes for %d changed keys vs %d bytes full (%d keys)",
			len(delta), changed, len(full), total)
	}
}

func TestDeltaTrackerCoalescingOverCaptures(t *testing.T) {
	d := newDeltaTracker()
	d.touch("s", "base-epoch")
	d.markFull(1)
	// Far more epochs than the bound: old boundaries merge away.
	for i := 0; i < maxDeltaEpochs*2; i++ {
		d.touch("s", fmt.Sprintf("k%03d", i))
		d.markFull(int64(i + 2))
	}
	dirty, ok := d.capture(1, 1000)
	if !ok {
		t.Fatal("capture from retained mark must succeed")
	}
	// Over-capture is allowed; losing a change is not.
	for i := 0; i < maxDeltaEpochs*2; i++ {
		if _, present := dirty[dirtyKey{"s", fmt.Sprintf("k%03d", i)}]; !present {
			t.Fatalf("change k%03d lost to epoch coalescing", i)
		}
	}
}

func TestDeltaTrackerPrunesOnCapture(t *testing.T) {
	d := newDeltaTracker()
	d.markFull(1)
	for i := 0; i < 10; i++ {
		d.touch("s", fmt.Sprintf("k%d", i))
		if _, ok := d.capture(int64(i+1), int64(i+2)); !ok {
			t.Fatalf("capture %d failed", i)
		}
	}
	if len(d.seq) > 2 {
		t.Fatalf("epochs not pruned after capture: %d retained", len(d.seq))
	}
	if len(d.marks) > 2 {
		t.Fatalf("marks not pruned after capture: %d retained", len(d.marks))
	}
}

func TestLSMDeltaRoundtrip(t *testing.T) {
	b, err := NewLSMBackend(t.TempDir(), 8)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Dispose()
	b.SetDeltaTracking(true)
	for i := 0; i < 50; i++ {
		b.SetCurrentKey(fmt.Sprintf("k%02d", i))
		b.Value("count").Set(int64(i))
	}
	full, err := b.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	b.MarkFull(1)
	b.SetCurrentKey("k03")
	b.Value("count").Set(int64(1003))
	b.SetCurrentKey("k07")
	b.Value("count").Clear()
	delta, ok, err := b.SnapshotDelta(1, 2)
	if err != nil || !ok {
		t.Fatalf("SnapshotDelta: ok=%v err=%v", ok, err)
	}

	restored := NewMemoryBackend(8)
	if err := restored.Restore(full); err != nil {
		t.Fatal(err)
	}
	if err := restored.ApplyDelta(delta); err != nil {
		t.Fatal(err)
	}
	snapshotEqual(t, b, restored)
}

func TestLSMSnapshotFilesRoundtrip(t *testing.T) {
	src, err := NewLSMBackend(t.TempDir(), 8)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Dispose()
	for i := 0; i < 200; i++ {
		src.SetCurrentKey(fmt.Sprintf("k%03d", i))
		src.Value("v").Set(int64(i))
	}
	files, err := src.SnapshotFiles()
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("SnapshotFiles returned no files for non-empty state")
	}

	dst, err := NewLSMBackend(t.TempDir(), 8)
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Dispose()
	dst.SetCurrentKey("stale")
	dst.Value("v").Set(int64(-1))
	if err := dst.RestoreFromFiles(files); err != nil {
		t.Fatal(err)
	}
	snapshotEqual(t, src, dst)
}

func TestChangelogTruncateTo(t *testing.T) {
	log := NewChangelog()
	for i := 0; i < 10; i++ {
		log.Append(ChangelogOp{Name: "v", Key: fmt.Sprintf("k%d", i), Value: int64(i)})
	}
	if log.AbsLen() != 10 {
		t.Fatalf("AbsLen = %d, want 10", log.AbsLen())
	}
	log.TruncateTo(6)
	if log.Len() != 4 {
		t.Fatalf("Len after truncate = %d, want 4", log.Len())
	}
	if log.AbsLen() != 10 {
		t.Fatalf("AbsLen must be stable under truncation, got %d", log.AbsLen())
	}
	log.TruncateTo(3) // older position: no-op
	if log.Len() != 4 {
		t.Fatalf("truncate to older position must be a no-op, got Len=%d", log.Len())
	}
	log.TruncateTo(999) // beyond end: clamps
	if log.Len() != 0 || log.AbsLen() != 10 {
		t.Fatalf("clamped truncate: Len=%d AbsLen=%d", log.Len(), log.AbsLen())
	}
}

func TestChangelogBackendBoundedByCheckpoints(t *testing.T) {
	const rounds, perRound = 20, 15
	log := NewChangelog()
	b := NewChangelogBackend(4, log)
	b.SetDeltaTracking(true)
	b.MarkFull(0)
	maxLen := 0
	cp := int64(0)
	for r := 0; r < rounds; r++ {
		for i := 0; i < perRound; i++ {
			b.SetCurrentKey(fmt.Sprintf("k%d", i))
			b.Value("v").Set(int64(r*perRound + i))
		}
		if _, ok, err := b.SnapshotDelta(cp, cp+1); !ok || err != nil {
			t.Fatalf("round %d: ok=%v err=%v", r, ok, err)
		}
		cp++
		if log.Len() > maxLen {
			maxLen = log.Len()
		}
	}
	// Without truncation the log would hold rounds*perRound records. With
	// it, at most the records of the two most recent intervals survive (the
	// base checkpoint's interval is truncated one capture later).
	if maxLen > 2*perRound {
		t.Fatalf("changelog grew unboundedly: max %d records retained (interval writes %d)",
			maxLen, perRound)
	}
	if total := rounds * perRound; log.Len() >= total {
		t.Fatalf("no truncation happened: %d records", log.Len())
	}
}
