package state

import (
	"cmp"
	"encoding/binary"
	"fmt"
	"slices"
	"sort"

	"repro/internal/lsm"
)

// LSMBackend stores keyed state in a log-structured merge tree on disk,
// letting state grow beyond main memory (§3.1: "the ability to store state
// beyond main memory ... log-structured merge trees"). Keys are laid out as
//
//	group (2 bytes big-endian) | nameLen (2 bytes) | name | key
//
// so that a key-group export is a contiguous range scan — exactly why
// RocksDB-style backends make rescaling and incremental checkpoints cheap.
type LSMBackend struct {
	numGroups  int
	currentKey string
	tree       *lsm.Tree

	// delta, when non-nil, records every mutated (name, key) slot so
	// SnapshotDelta can serialize only what changed since a checkpoint.
	delta *deltaTracker
}

// NewLSMBackend opens (or creates) an LSM-backed state store in dir.
func NewLSMBackend(dir string, numGroups int) (*LSMBackend, error) {
	if numGroups <= 0 {
		numGroups = DefaultKeyGroups
	}
	tree, err := lsm.Open(lsm.Options{Dir: dir})
	if err != nil {
		return nil, fmt.Errorf("state: open lsm backend: %w", err)
	}
	return &LSMBackend{numGroups: numGroups, tree: tree}, nil
}

// Tree exposes the underlying LSM tree (used by incremental checkpoints).
func (b *LSMBackend) Tree() *lsm.Tree { return b.tree }

// SetCurrentKey scopes subsequent state access.
func (b *LSMBackend) SetCurrentKey(key string) { b.currentKey = key }

// CurrentKey returns the scoped key.
func (b *LSMBackend) CurrentKey() string { return b.currentKey }

// NumKeyGroups returns the key-group fan-out.
func (b *LSMBackend) NumKeyGroups() int { return b.numGroups }

func (b *LSMBackend) storageKey(name, key string) []byte {
	g := KeyGroupFor(key, b.numGroups)
	buf := make([]byte, 0, 4+len(name)+len(key))
	var hdr [4]byte
	binary.BigEndian.PutUint16(hdr[0:2], uint16(g))
	binary.BigEndian.PutUint16(hdr[2:4], uint16(len(name)))
	buf = append(buf, hdr[:]...)
	buf = append(buf, name...)
	buf = append(buf, key...)
	return buf
}

func (b *LSMBackend) get(name, key string) (any, bool) {
	raw, found, err := b.tree.Get(b.storageKey(name, key))
	if err != nil || !found {
		return nil, false
	}
	v, err := decodeAny(raw)
	if err != nil {
		return nil, false
	}
	return v, true
}

func (b *LSMBackend) put(name, key string, v any) {
	if b.delta != nil {
		b.delta.touch(name, key)
	}
	raw, err := encodeAny(v)
	if err != nil {
		panic(fmt.Sprintf("state: unencodable value in LSM backend: %v", err))
	}
	if err := b.tree.Put(b.storageKey(name, key), raw); err != nil {
		panic(fmt.Sprintf("state: lsm put: %v", err))
	}
}

func (b *LSMBackend) del(name, key string) {
	if b.delta != nil {
		b.delta.touch(name, key)
	}
	if err := b.tree.Delete(b.storageKey(name, key)); err != nil {
		panic(fmt.Sprintf("state: lsm delete: %v", err))
	}
}

// Value returns the named single-value state handle.
func (b *LSMBackend) Value(name string) ValueState { return &lsmValue{b: b, name: name} }

// List returns the named list state handle (stored as one encoded blob).
func (b *LSMBackend) List(name string) ListState { return &lsmList{b: b, name: name} }

// Map returns the named map state handle (stored as one encoded blob).
func (b *LSMBackend) Map(name string) MapState { return &lsmMap{b: b, name: name} }

// Reducing returns the named reducing state handle.
func (b *LSMBackend) Reducing(name string, reduce func(a, b any) any) ReducingState {
	return &lsmReducing{b: b, name: name, reduce: reduce}
}

type lsmValue struct {
	b    *LSMBackend
	name string
}

func (s *lsmValue) Get() (any, bool) { return s.b.get(s.name, s.b.currentKey) }
func (s *lsmValue) Set(v any)        { s.b.put(s.name, s.b.currentKey, v) }
func (s *lsmValue) Clear()           { s.b.del(s.name, s.b.currentKey) }

type lsmList struct {
	b    *LSMBackend
	name string
}

func (s *lsmList) Append(v any) {
	cur, _ := s.b.get(s.name, s.b.currentKey)
	list, _ := cur.([]any)
	s.b.put(s.name, s.b.currentKey, append(list, v))
}

func (s *lsmList) Get() []any {
	cur, _ := s.b.get(s.name, s.b.currentKey)
	list, _ := cur.([]any)
	return list
}

func (s *lsmList) Clear() { s.b.del(s.name, s.b.currentKey) }

type lsmMap struct {
	b    *LSMBackend
	name string
}

func (s *lsmMap) inner() map[string]any {
	cur, ok := s.b.get(s.name, s.b.currentKey)
	if ok {
		if m, ok := cur.(map[string]any); ok {
			return m
		}
	}
	return map[string]any{}
}

func (s *lsmMap) Put(mapKey string, v any) {
	m := s.inner()
	m[mapKey] = v
	s.b.put(s.name, s.b.currentKey, m)
}

func (s *lsmMap) Get(mapKey string) (any, bool) {
	v, ok := s.inner()[mapKey]
	return v, ok
}

func (s *lsmMap) Remove(mapKey string) {
	m := s.inner()
	delete(m, mapKey)
	s.b.put(s.name, s.b.currentKey, m)
}

func (s *lsmMap) Keys() []string {
	m := s.inner()
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func (s *lsmMap) Clear() { s.b.del(s.name, s.b.currentKey) }

type lsmReducing struct {
	b      *LSMBackend
	name   string
	reduce func(a, b any) any
}

func (s *lsmReducing) Add(v any) {
	cur, ok := s.b.get(s.name, s.b.currentKey)
	if !ok {
		s.b.put(s.name, s.b.currentKey, v)
		return
	}
	s.b.put(s.name, s.b.currentKey, s.reduce(cur, v))
}

func (s *lsmReducing) Get() (any, bool) { return s.b.get(s.name, s.b.currentKey) }
func (s *lsmReducing) Clear()           { s.b.del(s.name, s.b.currentKey) }

// parseStorageKey splits a composite LSM key into (group, name, key).
func parseStorageKey(k []byte) (group int, name, key string, ok bool) {
	if len(k) < 4 {
		return 0, "", "", false
	}
	group = int(binary.BigEndian.Uint16(k[0:2]))
	nameLen := int(binary.BigEndian.Uint16(k[2:4]))
	if len(k) < 4+nameLen {
		return 0, "", "", false
	}
	return group, string(k[4 : 4+nameLen]), string(k[4+nameLen:]), true
}

// Snapshot serialises all records into the canonical Image format, so LSM
// snapshots are portable to other backends. The WAL is synced first so a
// completed checkpoint never references writes the OS hasn't persisted.
func (b *LSMBackend) Snapshot() ([]byte, error) {
	if err := b.tree.SyncWAL(); err != nil {
		return nil, err
	}
	all := make([]int, b.numGroups)
	for i := range all {
		all[i] = i
	}
	return b.ExportGroups(all)
}

// Restore replaces contents from a snapshot image.
func (b *LSMBackend) Restore(data []byte) error { return b.ImportGroups(data) }

// ExportGroups serialises the given key groups into the canonical Image.
func (b *LSMBackend) ExportGroups(groups []int) ([]byte, error) {
	want := make(map[int]bool, len(groups))
	for _, g := range groups {
		want[g] = true
	}
	img := Image{NumGroups: b.numGroups, Groups: make(map[int]map[string]map[string]any)}
	var scanErr error
	err := b.tree.Scan(nil, nil, func(k, v []byte) bool {
		g, name, key, ok := parseStorageKey(k)
		if !ok || !want[g] {
			return true
		}
		val, err := decodeAny(v)
		if err != nil {
			scanErr = err
			return false
		}
		if img.Groups[g] == nil {
			img.Groups[g] = make(map[string]map[string]any)
		}
		if img.Groups[g][name] == nil {
			img.Groups[g][name] = make(map[string]any)
		}
		img.Groups[g][name][key] = val
		return true
	})
	if err != nil {
		return nil, fmt.Errorf("state: lsm export scan: %w", err)
	}
	if scanErr != nil {
		return nil, scanErr
	}
	return EncodeImage(img)
}

// ImportGroups merges an exported image into this backend.
func (b *LSMBackend) ImportGroups(data []byte) error {
	img, err := DecodeImage(data)
	if err != nil {
		return err
	}
	// Apply in sorted (group, name, key) order. The image is nested maps;
	// iterating them directly fed the LSM (WAL frame order, memtable flush
	// boundaries) in a different order each run, so two imports of the same
	// image produced byte-different trees — which defeats incremental
	// checkpoints' unchanged-file sharing right after a rescale import.
	for _, g := range sortedKeys(img.Groups) {
		names := img.Groups[g]
		for _, name := range sortedKeys(names) {
			kvs := names[name]
			for _, key := range sortedKeys(kvs) {
				raw, err := encodeAny(kvs[key])
				if err != nil {
					return err
				}
				if err := b.tree.Put(b.storageKey(name, key), raw); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// sortedKeys returns m's keys sorted, for deterministic application of
// nested-map images.
func sortedKeys[K cmp.Ordered, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// ForEachKey iterates all keys under the named value state.
func (b *LSMBackend) ForEachKey(name string, fn func(key string, value any) bool) {
	_ = b.tree.Scan(nil, nil, func(k, v []byte) bool {
		_, n, key, ok := parseStorageKey(k)
		if !ok || n != name {
			return true
		}
		val, err := decodeAny(v)
		if err != nil {
			return true
		}
		return fn(key, val)
	})
}

// Dispose closes the LSM tree.
func (b *LSMBackend) Dispose() error { return b.tree.Close() }

var _ Backend = (*LSMBackend)(nil)
