package state

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestLSMImportGroupsDeterministic pins the fix for order-nondeterministic
// image application: ImportGroups used to iterate the image's nested maps
// directly, so the LSM saw Puts — and wrote WAL frames — in a different order
// each run. Two imports of the same image must now produce byte-identical
// WALs, which is what lets incremental checkpoints share unchanged files
// right after a rescale import.
func TestLSMImportGroupsDeterministic(t *testing.T) {
	img := Image{NumGroups: DefaultKeyGroups, Groups: map[int]map[string]map[string]any{}}
	for g := 0; g < 8; g++ {
		img.Groups[g] = map[string]map[string]any{}
		for _, name := range []string{"v", "w"} {
			kvs := map[string]any{}
			for i := 0; i < 20; i++ {
				kvs[fmt.Sprintf("key-%d-%d", g, i)] = int64(g*100 + i)
			}
			img.Groups[g][name] = kvs
		}
	}
	data, err := EncodeImage(img)
	if err != nil {
		t.Fatal(err)
	}

	walAfterImport := func() []byte {
		dir := t.TempDir()
		b, err := NewLSMBackend(dir, DefaultKeyGroups)
		if err != nil {
			t.Fatal(err)
		}
		defer b.Dispose()
		if err := b.ImportGroups(data); err != nil {
			t.Fatal(err)
		}
		if err := b.Tree().SyncWAL(); err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(filepath.Join(dir, "wal.log"))
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}

	first := walAfterImport()
	if len(first) == 0 {
		t.Fatal("import produced an empty WAL; the probe observes nothing")
	}
	for i := 0; i < 4; i++ {
		if again := walAfterImport(); !bytes.Equal(first, again) {
			t.Fatalf("run %d: WAL bytes differ between imports of the same image", i)
		}
	}
}
