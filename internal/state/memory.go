package state

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
)

// MemoryBackend keeps all state on the heap, organised as
// keyGroup -> stateName -> key -> value. It is the "internally managed"
// backend of §3.1 (Flink-style in-memory state) and the default for jobs.
type MemoryBackend struct {
	numGroups  int
	currentKey string
	curGroup   int                         // key group of currentKey, hashed once per SetCurrentKey
	groups     []map[string]map[string]any // group -> name -> key -> value

	// Handles are memoized per state name: operators call e.g. State().Map(n)
	// on every record, and a fresh handle per call is a hot-path allocation.
	mapHandles map[string]*memMap
	valHandles map[string]*memValue

	// delta, when non-nil, records every mutated (name, key) slot so
	// SnapshotDelta can serialize only what changed since a checkpoint.
	delta *deltaTracker
}

// NewMemoryBackend returns an empty backend with the given key-group count
// (0 means DefaultKeyGroups).
func NewMemoryBackend(numGroups int) *MemoryBackend {
	if numGroups <= 0 {
		numGroups = DefaultKeyGroups
	}
	b := &MemoryBackend{
		numGroups:  numGroups,
		groups:     make([]map[string]map[string]any, numGroups),
		mapHandles: make(map[string]*memMap),
		valHandles: make(map[string]*memValue),
	}
	b.curGroup = KeyGroupFor("", numGroups)
	return b
}

// SetCurrentKey scopes subsequent state access.
func (b *MemoryBackend) SetCurrentKey(key string) {
	if key == b.currentKey {
		return
	}
	b.currentKey = key
	b.curGroup = KeyGroupFor(key, b.numGroups)
}

// CurrentKey returns the scoped key.
func (b *MemoryBackend) CurrentKey() string { return b.currentKey }

// NumKeyGroups returns the key-group fan-out.
func (b *MemoryBackend) NumKeyGroups() int { return b.numGroups }

// groupOf resolves a key's group, reusing the hash done by SetCurrentKey for
// the common scoped-access case.
func (b *MemoryBackend) groupOf(key string) int {
	if key == b.currentKey {
		return b.curGroup
	}
	return KeyGroupFor(key, b.numGroups)
}

func (b *MemoryBackend) slot(name, key string) (map[string]any, string) {
	g := b.groupOf(key)
	if b.groups[g] == nil {
		b.groups[g] = make(map[string]map[string]any)
	}
	m := b.groups[g][name]
	if m == nil {
		m = make(map[string]any)
		b.groups[g][name] = m
	}
	return m, key
}

func (b *MemoryBackend) get(name, key string) (any, bool) {
	g := b.groupOf(key)
	if b.groups[g] == nil {
		return nil, false
	}
	m := b.groups[g][name]
	if m == nil {
		return nil, false
	}
	v, ok := m[key]
	return v, ok
}

func (b *MemoryBackend) put(name, key string, v any) {
	if b.delta != nil {
		b.delta.touch(name, key)
	}
	m, k := b.slot(name, key)
	m[k] = v
}

func (b *MemoryBackend) del(name, key string) {
	if b.delta != nil {
		b.delta.touch(name, key)
	}
	g := b.groupOf(key)
	if b.groups[g] == nil {
		return
	}
	if m := b.groups[g][name]; m != nil {
		delete(m, key)
	}
}

// Value returns the named single-value state handle.
func (b *MemoryBackend) Value(name string) ValueState {
	h := b.valHandles[name]
	if h == nil {
		h = &memValue{b: b, name: name}
		b.valHandles[name] = h
	}
	return h
}

// List returns the named list state handle.
func (b *MemoryBackend) List(name string) ListState { return &memList{b: b, name: name} }

// Map returns the named map state handle.
func (b *MemoryBackend) Map(name string) MapState {
	h := b.mapHandles[name]
	if h == nil {
		h = &memMap{b: b, name: name}
		b.mapHandles[name] = h
	}
	return h
}

// invalidateHandles drops cached per-key lookups after bulk state swaps.
func (b *MemoryBackend) invalidateHandles() {
	for _, h := range b.mapHandles {
		h.cur, h.curKey, h.km = nil, "", nil
	}
}

// Reducing returns the named reducing state handle.
func (b *MemoryBackend) Reducing(name string, reduce func(a, b any) any) ReducingState {
	return &memReducing{b: b, name: name, reduce: reduce}
}

type memValue struct {
	b    *MemoryBackend
	name string
}

func (s *memValue) Get() (any, bool) { return s.b.get(s.name, s.b.currentKey) }
func (s *memValue) Set(v any)        { s.b.put(s.name, s.b.currentKey, v) }
func (s *memValue) Clear()           { s.b.del(s.name, s.b.currentKey) }

type memList struct {
	b    *MemoryBackend
	name string
}

func (s *memList) Append(v any) {
	cur, _ := s.b.get(s.name, s.b.currentKey)
	list, _ := cur.([]any)
	s.b.put(s.name, s.b.currentKey, append(list, v))
}

func (s *memList) Get() []any {
	cur, _ := s.b.get(s.name, s.b.currentKey)
	list, _ := cur.([]any)
	return list
}

func (s *memList) Clear() { s.b.del(s.name, s.b.currentKey) }

type memMap struct {
	b    *MemoryBackend
	name string
	// cur caches the inner map resolved for curKey, so repeated accesses for
	// one record (the common Get-then-Put) descend the group/name/key maps
	// once; km caches the group→(key→value) map for this state name so the
	// per-record descent skips re-hashing the name. Clear resets cur; bulk
	// restores invalidate both.
	curKey string
	cur    map[string]any
	km     []map[string]any
}

func (s *memMap) inner(create bool) map[string]any {
	b := s.b
	key := b.currentKey
	if s.cur != nil && s.curKey == key {
		return s.cur
	}
	if s.km == nil {
		s.km = make([]map[string]any, b.numGroups)
	}
	g := b.groupOf(key)
	km := s.km[g]
	if km == nil {
		if b.groups[g] != nil {
			km = b.groups[g][s.name]
		}
		if km == nil {
			if !create {
				return nil
			}
			km, _ = b.slot(s.name, key)
		}
		s.km[g] = km
	}
	if v, ok := km[key]; ok {
		if m, ok := v.(map[string]any); ok {
			s.curKey, s.cur = key, m
			return m
		}
	}
	if !create {
		return nil
	}
	m := make(map[string]any)
	km[key] = m
	s.curKey, s.cur = key, m
	return m
}

// Put writes directly into the cached inner map, bypassing MemoryBackend.put
// — so delta tracking is hooked here explicitly.
func (s *memMap) Put(mapKey string, v any) {
	if s.b.delta != nil {
		s.b.delta.touch(s.name, s.b.currentKey)
	}
	s.inner(true)[mapKey] = v
}

func (s *memMap) Get(mapKey string) (any, bool) {
	m := s.inner(false)
	if m == nil {
		return nil, false
	}
	v, ok := m[mapKey]
	return v, ok
}

func (s *memMap) Remove(mapKey string) {
	if m := s.inner(false); m != nil {
		if s.b.delta != nil {
			s.b.delta.touch(s.name, s.b.currentKey)
		}
		delete(m, mapKey)
	}
}

func (s *memMap) Keys() []string {
	m := s.inner(false)
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func (s *memMap) Clear() {
	s.b.del(s.name, s.b.currentKey)
	s.cur, s.curKey = nil, ""
}

type memReducing struct {
	b      *MemoryBackend
	name   string
	reduce func(a, b any) any
}

func (s *memReducing) Add(v any) {
	cur, ok := s.b.get(s.name, s.b.currentKey)
	if !ok {
		s.b.put(s.name, s.b.currentKey, v)
		return
	}
	s.b.put(s.name, s.b.currentKey, s.reduce(cur, v))
}

func (s *memReducing) Get() (any, bool) { return s.b.get(s.name, s.b.currentKey) }
func (s *memReducing) Clear()           { s.b.del(s.name, s.b.currentKey) }

// Image is the canonical serialised form of a (subset of a) backend's keyed
// state, shared by every backend implementation so snapshots are portable
// across backends (a checkpoint taken on the memory backend restores into an
// LSM backend and vice versa) and can be filtered by key group offline for
// rescaling (E13).
type Image struct {
	NumGroups int
	// Groups maps group index -> state name -> key -> value.
	Groups map[int]map[string]map[string]any
}

// EncodeImage serialises an image.
func EncodeImage(img Image) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(img); err != nil {
		return nil, fmt.Errorf("state: encode image: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeImage deserialises an image.
func DecodeImage(data []byte) (Image, error) {
	var img Image
	if len(data) == 0 {
		return Image{Groups: map[int]map[string]map[string]any{}}, nil
	}
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&img); err != nil {
		return Image{}, fmt.Errorf("state: decode image: %w", err)
	}
	if img.Groups == nil {
		img.Groups = map[int]map[string]map[string]any{}
	}
	return img, nil
}

// FilterImage returns a new serialised image containing only the key groups
// accepted by keep. It is how a rescale redistributes old instance snapshots
// to new instances owning different group ranges.
func FilterImage(data []byte, keep func(group int) bool) ([]byte, error) {
	img, err := DecodeImage(data)
	if err != nil {
		return nil, err
	}
	out := Image{NumGroups: img.NumGroups, Groups: make(map[int]map[string]map[string]any)}
	for g, names := range img.Groups {
		if keep(g) {
			out.Groups[g] = names
		}
	}
	return EncodeImage(out)
}

// Snapshot serialises the entire backend.
func (b *MemoryBackend) Snapshot() ([]byte, error) {
	all := make([]int, b.numGroups)
	for i := range all {
		all[i] = i
	}
	return b.ExportGroups(all)
}

// Restore replaces backend contents from a snapshot.
func (b *MemoryBackend) Restore(data []byte) error {
	b.groups = make([]map[string]map[string]any, b.numGroups)
	b.invalidateHandles()
	return b.ImportGroups(data)
}

// ExportGroups serialises the given key groups.
func (b *MemoryBackend) ExportGroups(groups []int) ([]byte, error) {
	img := Image{NumGroups: b.numGroups, Groups: make(map[int]map[string]map[string]any)}
	for _, g := range groups {
		if g < 0 || g >= b.numGroups {
			return nil, fmt.Errorf("state: key group %d out of range [0,%d)", g, b.numGroups)
		}
		if b.groups[g] != nil {
			img.Groups[g] = b.groups[g]
		}
	}
	return EncodeImage(img)
}

// ImportGroups merges previously exported groups into this backend. Imported
// groups replace existing contents of the same group.
func (b *MemoryBackend) ImportGroups(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	img, err := DecodeImage(data)
	if err != nil {
		return err
	}
	if img.NumGroups != b.numGroups {
		return fmt.Errorf("state: key-group count mismatch: snapshot has %d, backend has %d",
			img.NumGroups, b.numGroups)
	}
	for g, names := range img.Groups {
		if g < 0 || g >= b.numGroups {
			return fmt.Errorf("state: imported group %d out of range", g)
		}
		b.groups[g] = names
	}
	b.invalidateHandles()
	return nil
}

// ForEachKey iterates all keys under the named value state.
func (b *MemoryBackend) ForEachKey(name string, fn func(key string, value any) bool) {
	for _, g := range b.groups {
		if g == nil {
			continue
		}
		for k, v := range g[name] {
			if !fn(k, v) {
				return
			}
		}
	}
}

// Dispose is a no-op for the memory backend.
func (b *MemoryBackend) Dispose() error { return nil }

var _ Backend = (*MemoryBackend)(nil)
