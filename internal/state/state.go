// Package state implements managed keyed state for stream operators — the
// concept §3.1 of the paper traces from 1st-generation "summaries" and
// "synopses" to the explicit, fault-tolerant partitioned state of modern
// engines. It provides:
//
//   - the state primitives (ValueState, ListState, MapState, ReducingState)
//     scoped to the current key,
//   - key-group organisation (keys hash into a fixed number of key groups;
//     operator instances own contiguous group ranges), which is what makes
//     rescaling with state migration possible (E13),
//   - three backends: in-memory ("internally managed", Flink-style), an
//     LSM-tree-backed store (spilling beyond main memory), and a
//     changelog-backed store ("externally managed", Samza/Kafka-Streams
//     style),
//   - TTL-based state expiration, and
//   - state versioning with schema migration (§4.2 State Versioning).
package state

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"hash/fnv"
)

// DefaultKeyGroups is the default number of key groups. Following Flink's
// design, the key space is pre-partitioned into a fixed number of groups that
// are assigned to operator instances in contiguous ranges; rescaling moves
// whole groups rather than splitting hash ranges.
const DefaultKeyGroups = 128

// KeyGroupFor maps a key to its key group in [0, numGroups).
func KeyGroupFor(key string, numGroups int) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(numGroups))
}

// GroupRange returns the half-open key-group range [start, end) owned by
// operator instance `index` out of `parallelism`, over numGroups groups.
func GroupRange(numGroups, parallelism, index int) (start, end int) {
	if parallelism <= 0 {
		return 0, 0
	}
	start = index * numGroups / parallelism
	end = (index + 1) * numGroups / parallelism
	return start, end
}

// ValueState is single-value state scoped to the current key.
type ValueState interface {
	// Get returns the value and whether one is set.
	Get() (any, bool)
	// Set stores the value.
	Set(v any)
	// Clear removes the value.
	Clear()
}

// ListState is append-only list state scoped to the current key.
type ListState interface {
	Append(v any)
	// Get returns the elements in append order. The returned slice must not
	// be mutated.
	Get() []any
	Clear()
}

// MapState is a per-key map of user sub-keys to values.
type MapState interface {
	Put(mapKey string, v any)
	Get(mapKey string) (any, bool)
	Remove(mapKey string)
	// Keys returns the sub-keys in unspecified order. The returned slice is
	// a point-in-time snapshot, never a live view: mutating the map (Put,
	// Remove, Clear) while ranging over it must not change the slice, skip
	// entries, or revive removed ones. Callers rely on this — the window
	// operator removes fired windows and session merges remove absorbed
	// windows while iterating Keys().
	Keys() []string
	Clear()
}

// ReducingState folds appended values into one using a reduce function.
type ReducingState interface {
	Add(v any)
	// Get returns the reduced value and whether any value was added.
	Get() (any, bool)
	Clear()
}

// Backend stores keyed state for one operator instance. Implementations are
// not safe for concurrent use: the engine serialises access per instance.
type Backend interface {
	// SetCurrentKey scopes subsequent state accesses to the given key.
	SetCurrentKey(key string)
	// CurrentKey returns the key set by SetCurrentKey.
	CurrentKey() string

	// Value, List, Map and Reducing return handles to named states scoped to
	// the current key. Handles may be retrieved once and reused across keys.
	Value(name string) ValueState
	List(name string) ListState
	Map(name string) MapState
	Reducing(name string, reduce func(a, b any) any) ReducingState

	// Snapshot serialises the entire backend contents.
	Snapshot() ([]byte, error)
	// Restore replaces the backend contents from a snapshot.
	Restore(data []byte) error

	// ExportGroups serialises only the given key groups (state migration).
	ExportGroups(groups []int) ([]byte, error)
	// ImportGroups merges previously exported key groups into this backend.
	ImportGroups(data []byte) error

	// NumKeyGroups returns the key-group fan-out the backend was built with.
	NumKeyGroups() int

	// ForEachKey calls fn for every (key, value) pair under the named value
	// state. Iteration order is unspecified; fn returning false stops early.
	ForEachKey(name string, fn func(key string, value any) bool)

	// Dispose releases resources (files, logs).
	Dispose() error
}

// RegisterType makes a user value type encodable in snapshots. It must be
// called (typically from init) for every concrete type stored in state.
// Builtin scalar types, strings, and []any / map[string]any are
// pre-registered.
func RegisterType(v any) { gob.Register(v) }

func init() {
	gob.Register([]any{})
	gob.Register(map[string]any{})
	gob.Register(map[string]int64{})
	gob.Register([]string{})
	gob.Register([]float64{})
	gob.Register([]int64{})
	gob.Register(int64(0))
	gob.Register(float64(0))
	gob.Register("")
	gob.Register(false)
}

// encodeAny gob-encodes a value.
func encodeAny(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&v); err != nil {
		return nil, fmt.Errorf("state: encode %T: %w", v, err)
	}
	return buf.Bytes(), nil
}

// decodeAny gob-decodes a value.
func decodeAny(data []byte) (any, error) {
	var v any
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&v); err != nil {
		return nil, fmt.Errorf("state: decode: %w", err)
	}
	return v, nil
}
