package state

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/eventtime"
)

func TestKeyGroupForStableAndInRange(t *testing.T) {
	check := func(key string) bool {
		g := KeyGroupFor(key, DefaultKeyGroups)
		return g >= 0 && g < DefaultKeyGroups && g == KeyGroupFor(key, DefaultKeyGroups)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGroupRangePartitionsExactly(t *testing.T) {
	// Property: for any parallelism, the group ranges tile [0, numGroups)
	// without gaps or overlaps.
	for par := 1; par <= 130; par++ {
		covered := make([]bool, DefaultKeyGroups)
		for i := 0; i < par; i++ {
			s, e := GroupRange(DefaultKeyGroups, par, i)
			for g := s; g < e; g++ {
				if covered[g] {
					t.Fatalf("par=%d: group %d covered twice", par, g)
				}
				covered[g] = true
			}
		}
		for g, c := range covered {
			if !c {
				t.Fatalf("par=%d: group %d not covered", par, g)
			}
		}
	}
}

func testBackendCRUD(t *testing.T, b Backend) {
	t.Helper()
	b.SetCurrentKey("alice")
	v := b.Value("balance")
	if _, ok := v.Get(); ok {
		t.Fatal("empty state should be absent")
	}
	v.Set(int64(100))
	got, ok := v.Get()
	if !ok || got.(int64) != 100 {
		t.Fatalf("value get: %v %v", got, ok)
	}

	// Different key sees different state.
	b.SetCurrentKey("bob")
	if _, ok := v.Get(); ok {
		t.Fatal("state leaked across keys")
	}
	v.Set(int64(7))

	b.SetCurrentKey("alice")
	got, _ = v.Get()
	if got.(int64) != 100 {
		t.Fatal("alice's state clobbered")
	}
	v.Clear()
	if _, ok := v.Get(); ok {
		t.Fatal("clear did not remove value")
	}

	// List state.
	l := b.List("events")
	l.Append("a")
	l.Append("b")
	if items := l.Get(); len(items) != 2 || items[0] != "a" {
		t.Fatalf("list state: %v", items)
	}
	l.Clear()
	if len(l.Get()) != 0 {
		t.Fatal("list clear failed")
	}

	// Map state.
	m := b.Map("attrs")
	m.Put("x", int64(1))
	m.Put("y", int64(2))
	if val, ok := m.Get("x"); !ok || val.(int64) != 1 {
		t.Fatalf("map get: %v %v", val, ok)
	}
	if keys := m.Keys(); len(keys) != 2 {
		t.Fatalf("map keys: %v", keys)
	}
	m.Remove("x")
	if _, ok := m.Get("x"); ok {
		t.Fatal("map remove failed")
	}

	// Reducing state.
	r := b.Reducing("sum", func(a, b any) any { return a.(int64) + b.(int64) })
	r.Add(int64(3))
	r.Add(int64(4))
	if val, ok := r.Get(); !ok || val.(int64) != 7 {
		t.Fatalf("reducing: %v %v", val, ok)
	}

	testMapKeysSnapshot(t, b)
}

// testMapKeysSnapshot pins MapState.Keys() snapshot semantics: the window
// operator removes entries (and session merges add merged ones) while
// ranging over Keys(), so a live view would skip or corrupt iteration.
func testMapKeysSnapshot(t *testing.T, b Backend) {
	t.Helper()
	b.SetCurrentKey("snapshot-key")
	m := b.Map("windows")
	const n = 8
	for i := 0; i < n; i++ {
		m.Put(fmt.Sprintf("w%d", i), int64(i))
	}
	keys := m.Keys()
	if len(keys) != n {
		t.Fatalf("keys before mutation: want %d, got %v", n, keys)
	}
	visited := 0
	for _, k := range keys {
		// Mutate mid-iteration the way addSession/OnTimer do: remove the
		// visited entry and insert a new one.
		m.Remove(k)
		m.Put("merged-"+k, int64(99))
		visited++
	}
	if visited != n {
		t.Fatalf("iteration skipped entries: visited %d of %d", visited, n)
	}
	if len(keys) != n {
		t.Fatalf("snapshot mutated under iteration: %v", keys)
	}
	for i, k := range keys {
		if k == "" {
			t.Fatalf("snapshot entry %d zeroed by mutation", i)
		}
		if _, ok := m.Get(k); ok {
			t.Fatalf("removed key %s still present", k)
		}
	}
	after := m.Keys()
	if len(after) != n {
		t.Fatalf("post-mutation keys: want %d merged entries, got %v", n, after)
	}
	for _, k := range after {
		m.Remove(k)
	}
}

func TestMemoryBackendCRUD(t *testing.T) {
	testBackendCRUD(t, NewMemoryBackend(0))
}

func TestLSMBackendCRUD(t *testing.T) {
	b, err := NewLSMBackend(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Dispose()
	testBackendCRUD(t, b)
}

func TestChangelogBackendCRUD(t *testing.T) {
	testBackendCRUD(t, NewChangelogBackend(0, NewChangelog()))
}

func TestSnapshotRestoreRoundtrip(t *testing.T) {
	src := NewMemoryBackend(0)
	for i := 0; i < 200; i++ {
		src.SetCurrentKey(fmt.Sprintf("k%d", i))
		src.Value("v").Set(int64(i))
	}
	img, err := src.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	dst := NewMemoryBackend(0)
	if err := dst.Restore(img); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		dst.SetCurrentKey(fmt.Sprintf("k%d", i))
		got, ok := dst.Value("v").Get()
		if !ok || got.(int64) != int64(i) {
			t.Fatalf("restore lost k%d: %v %v", i, got, ok)
		}
	}
}

func TestSnapshotPortableAcrossBackends(t *testing.T) {
	// A memory snapshot restores into an LSM backend and vice versa —
	// guaranteed by the shared Image format.
	mem := NewMemoryBackend(0)
	mem.SetCurrentKey("k1")
	mem.Value("v").Set("hello")
	img, err := mem.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	lsmB, err := NewLSMBackend(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer lsmB.Dispose()
	if err := lsmB.Restore(img); err != nil {
		t.Fatal(err)
	}
	lsmB.SetCurrentKey("k1")
	got, ok := lsmB.Value("v").Get()
	if !ok || got.(string) != "hello" {
		t.Fatalf("cross-backend restore: %v %v", got, ok)
	}

	img2, err := lsmB.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	mem2 := NewMemoryBackend(0)
	if err := mem2.Restore(img2); err != nil {
		t.Fatal(err)
	}
	mem2.SetCurrentKey("k1")
	if got, ok := mem2.Value("v").Get(); !ok || got.(string) != "hello" {
		t.Fatalf("lsm->mem restore: %v %v", got, ok)
	}
}

func TestExportImportGroups(t *testing.T) {
	src := NewMemoryBackend(0)
	keys := make([]string, 100)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
		src.SetCurrentKey(keys[i])
		src.Value("v").Set(int64(i))
	}
	// Export only the first half of the groups.
	var half []int
	for g := 0; g < DefaultKeyGroups/2; g++ {
		half = append(half, g)
	}
	data, err := src.ExportGroups(half)
	if err != nil {
		t.Fatal(err)
	}
	dst := NewMemoryBackend(0)
	if err := dst.ImportGroups(data); err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		dst.SetCurrentKey(k)
		_, ok := dst.Value("v").Get()
		inHalf := KeyGroupFor(k, DefaultKeyGroups) < DefaultKeyGroups/2
		if ok != inHalf {
			t.Fatalf("key %s (group %d): present=%v want %v", k, KeyGroupFor(k, DefaultKeyGroups), ok, inHalf)
		}
		if ok {
			got, _ := dst.Value("v").Get()
			if got.(int64) != int64(i) {
				t.Fatalf("wrong value for %s", k)
			}
		}
	}
}

func TestFilterImage(t *testing.T) {
	src := NewMemoryBackend(0)
	for i := 0; i < 50; i++ {
		src.SetCurrentKey(fmt.Sprintf("k%d", i))
		src.Value("v").Set(int64(i))
	}
	full, err := src.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	filtered, err := FilterImage(full, func(g int) bool { return g%2 == 0 })
	if err != nil {
		t.Fatal(err)
	}
	img, err := DecodeImage(filtered)
	if err != nil {
		t.Fatal(err)
	}
	for g := range img.Groups {
		if g%2 != 0 {
			t.Fatalf("filter kept group %d", g)
		}
	}
}

func TestImportGroupMismatchRejected(t *testing.T) {
	a := NewMemoryBackend(64)
	a.SetCurrentKey("x")
	a.Value("v").Set(int64(1))
	img, _ := a.Snapshot()
	b := NewMemoryBackend(128)
	if err := b.ImportGroups(img); err == nil {
		t.Fatal("mismatched key-group counts must be rejected")
	}
}

func TestChangelogReplayRebuildsState(t *testing.T) {
	log := NewChangelog()
	b := NewChangelogBackend(0, log)
	for i := 0; i < 100; i++ {
		b.SetCurrentKey(fmt.Sprintf("k%d", i%10))
		b.Value("v").Set(int64(i))
	}
	b.SetCurrentKey("k3")
	b.Value("v").Clear()

	rec := RecoverFromLog(0, log)
	for i := 0; i < 10; i++ {
		rec.SetCurrentKey(fmt.Sprintf("k%d", i))
		got, ok := rec.Value("v").Get()
		if i == 3 {
			if ok {
				t.Fatal("cleared key resurrected by replay")
			}
			continue
		}
		want := int64(90 + i) // last write per key
		if !ok || got.(int64) != want {
			t.Fatalf("replay k%d: got %v/%v want %d", i, got, ok, want)
		}
	}
}

func TestChangelogCompaction(t *testing.T) {
	log := NewChangelog()
	b := NewChangelogBackend(0, log)
	for i := 0; i < 1000; i++ {
		b.SetCurrentKey(fmt.Sprintf("k%d", i%5))
		b.Value("v").Set(int64(i))
	}
	if log.Len() != 1000 {
		t.Fatalf("log length: want 1000, got %d", log.Len())
	}
	log.Compact()
	if log.Len() != 5 {
		t.Fatalf("compacted length: want 5, got %d", log.Len())
	}
	rec := RecoverFromLog(0, log)
	rec.SetCurrentKey("k4")
	got, ok := rec.Value("v").Get()
	if !ok || got.(int64) != 999 {
		t.Fatalf("compacted replay: %v %v", got, ok)
	}
}

func TestChangelogEncodeDecode(t *testing.T) {
	log := NewChangelog()
	log.Append(ChangelogOp{Name: "v", Key: "a", Value: int64(1)})
	log.Append(ChangelogOp{Name: "v", Key: "b", Delete: true})
	data, err := log.Encode()
	if err != nil {
		t.Fatal(err)
	}
	log2, err := DecodeChangelog(data)
	if err != nil {
		t.Fatal(err)
	}
	if log2.Len() != 2 {
		t.Fatalf("decoded length: %d", log2.Len())
	}
}

// TestLSMBackendMatchesMemory is the cross-backend property test: random
// operations against both backends must read identically.
func TestLSMBackendMatchesMemory(t *testing.T) {
	lsmB, err := NewLSMBackend(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer lsmB.Dispose()
	mem := NewMemoryBackend(0)
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("k%d", rng.Intn(50))
		lsmB.SetCurrentKey(key)
		mem.SetCurrentKey(key)
		switch rng.Intn(4) {
		case 0, 1:
			v := int64(rng.Intn(1000))
			lsmB.Value("v").Set(v)
			mem.Value("v").Set(v)
		case 2:
			lsmB.Value("v").Clear()
			mem.Value("v").Clear()
		case 3:
			gl, okl := lsmB.Value("v").Get()
			gm, okm := mem.Value("v").Get()
			if okl != okm || (okl && gl.(int64) != gm.(int64)) {
				t.Fatalf("iter %d key %s: lsm=%v/%v mem=%v/%v", i, key, gl, okl, gm, okm)
			}
		}
	}
}

func TestForEachKey(t *testing.T) {
	for _, tc := range []struct {
		name string
		b    Backend
	}{
		{"memory", NewMemoryBackend(0)},
		{"changelog", NewChangelogBackend(0, NewChangelog())},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for i := 0; i < 20; i++ {
				tc.b.SetCurrentKey(fmt.Sprintf("k%d", i))
				tc.b.Value("v").Set(int64(i))
			}
			seen := map[string]bool{}
			tc.b.ForEachKey("v", func(k string, v any) bool {
				seen[k] = true
				return true
			})
			if len(seen) != 20 {
				t.Fatalf("ForEachKey visited %d keys, want 20", len(seen))
			}
		})
	}
}

func TestTTLExpiresValues(t *testing.T) {
	clock := eventtime.NewVirtualClock(0)
	b := NewMemoryBackend(0)
	b.SetCurrentKey("k")
	v := NewTTLValue(b.Value("v"), 100, clock)
	v.Set("fresh")
	if got, ok := v.Get(); !ok || got.(string) != "fresh" {
		t.Fatalf("fresh read failed: %v %v", got, ok)
	}
	clock.Advance(99)
	if _, ok := v.Get(); !ok {
		t.Fatal("expired too early")
	}
	clock.Advance(1)
	if _, ok := v.Get(); ok {
		t.Fatal("value did not expire at TTL")
	}
	// Expired read lazily clears the underlying state.
	if _, ok := b.Value("v").Get(); ok {
		t.Fatal("expired entry not cleaned up")
	}
	// Re-set restarts the clock.
	v.Set("again")
	clock.Advance(50)
	if _, ok := v.Get(); !ok {
		t.Fatal("re-set value expired prematurely")
	}
}

type profileV0 struct{ Name string }
type profileV1 struct {
	Name  string
	Email string
}

func init() {
	RegisterType(profileV0{})
	RegisterType(profileV1{})
}

func TestSchemaVersioningMigratesOnRead(t *testing.T) {
	reg := NewSchemaRegistry()
	if err := reg.Register("profile", 0); err != nil {
		t.Fatal(err)
	}
	b := NewMemoryBackend(0)
	b.SetCurrentKey("u1")
	v0 := NewVersionedValue(b.Value("profile"), "profile", reg)
	v0.Set(profileV0{Name: "ada"})

	// Application upgrades: register v1 with a migration.
	if err := reg.Register("profile", 1); err != nil {
		t.Fatal(err)
	}
	reg.AddMigration("profile", 0, func(old any) (any, error) {
		p := old.(profileV0)
		return profileV1{Name: p.Name, Email: p.Name + "@example.com"}, nil
	})

	v1 := NewVersionedValue(b.Value("profile"), "profile", reg)
	got, ok := v1.Get()
	if !ok {
		t.Fatal("migrated read failed")
	}
	p := got.(profileV1)
	if p.Name != "ada" || p.Email != "ada@example.com" {
		t.Fatalf("migration wrong: %+v", p)
	}
	// Migration is persisted: raw payload is now at v1.
	got2, _ := v1.Get()
	if got2.(profileV1).Email != "ada@example.com" {
		t.Fatal("second read inconsistent")
	}
}

func TestSchemaVersioningMissingMigration(t *testing.T) {
	reg := NewSchemaRegistry()
	reg.Register("s", 0)
	b := NewMemoryBackend(0)
	b.SetCurrentKey("k")
	v := NewVersionedValue(b.Value("s"), "s", reg)
	v.Set("old")
	reg.Register("s", 2) // skip ahead with no migrations
	if _, ok := v.Get(); ok {
		t.Fatal("read should fail without a migration chain")
	}
	if v.LastError == nil {
		t.Fatal("missing migration should record an error")
	}
}

func TestSchemaDowngradeRejected(t *testing.T) {
	reg := NewSchemaRegistry()
	reg.Register("s", 3)
	if err := reg.Register("s", 2); err == nil {
		t.Fatal("downgrade accepted")
	}
	if len(reg.Versions()) != 1 {
		t.Fatalf("versions: %v", reg.Versions())
	}
}

func TestLSMBackendPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	b, err := NewLSMBackend(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	b.SetCurrentKey("k")
	b.Value("v").Set(int64(42))
	if err := b.Dispose(); err != nil {
		t.Fatal(err)
	}
	b2, err := NewLSMBackend(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Dispose()
	b2.SetCurrentKey("k")
	got, ok := b2.Value("v").Get()
	if !ok || got.(int64) != 42 {
		t.Fatalf("state lost across reopen: %v %v", got, ok)
	}
}
