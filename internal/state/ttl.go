package state

import (
	"repro/internal/eventtime"
)

// ttlEntry wraps a stored value with its last-write time.
type ttlEntry struct {
	V       any
	Written int64 // processing time of last write, Unix millis
}

func init() { RegisterType(ttlEntry{}) }

// TTLValue decorates a ValueState with a time-to-live expiration policy
// (§3.1 "state expiration policies"): reads of entries older than TTL behave
// as if the value were absent and lazily clear it. Expiration is measured in
// processing time against the supplied clock.
type TTLValue struct {
	inner ValueState
	ttl   int64
	clock eventtime.Clock
}

// NewTTLValue wraps inner with the given TTL in milliseconds.
func NewTTLValue(inner ValueState, ttlMillis int64, clock eventtime.Clock) *TTLValue {
	if clock == nil {
		clock = eventtime.SystemClock{}
	}
	return &TTLValue{inner: inner, ttl: ttlMillis, clock: clock}
}

// Get returns the value if present and unexpired.
func (s *TTLValue) Get() (any, bool) {
	raw, ok := s.inner.Get()
	if !ok {
		return nil, false
	}
	e, ok := raw.(ttlEntry)
	if !ok {
		// Value written without TTL wrapping; treat as fresh.
		return raw, true
	}
	if s.clock.Now()-e.Written >= s.ttl {
		s.inner.Clear()
		return nil, false
	}
	return e.V, true
}

// Set stores the value stamped with the current time.
func (s *TTLValue) Set(v any) {
	s.inner.Set(ttlEntry{V: v, Written: s.clock.Now()})
}

// Clear removes the value.
func (s *TTLValue) Clear() { s.inner.Clear() }

var _ ValueState = (*TTLValue)(nil)
