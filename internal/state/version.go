package state

import (
	"fmt"
	"sort"
	"sync"
)

// This file implements state versioning and schema evolution (§4.2 "State
// Versioning"): applications change the shape of their state over their
// lifecycle, and a running pipeline must keep reading state written by older
// code. A SchemaRegistry records, per state name, a chain of versions with
// migration functions; VersionedValue wraps a ValueState so that reads
// transparently upgrade old payloads through the chain.

// Migration upgrades a value from one schema version to the next.
type Migration func(old any) (any, error)

// versioned wraps a stored payload with its schema version.
type versioned struct {
	Version int
	V       any
}

func init() { RegisterType(versioned{}) }

// SchemaRegistry tracks schema versions and migrations per state name.
// It is safe for concurrent use.
type SchemaRegistry struct {
	mu      sync.Mutex
	current map[string]int
	// migrations[name][v] upgrades version v to v+1.
	migrations map[string]map[int]Migration
}

// NewSchemaRegistry returns an empty registry.
func NewSchemaRegistry() *SchemaRegistry {
	return &SchemaRegistry{
		current:    make(map[string]int),
		migrations: make(map[string]map[int]Migration),
	}
}

// Register declares that state `name` is currently at `version`. Versions
// must only move forward.
func (r *SchemaRegistry) Register(name string, version int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if cur, ok := r.current[name]; ok && version < cur {
		return fmt.Errorf("state: cannot downgrade schema %q from v%d to v%d", name, cur, version)
	}
	r.current[name] = version
	return nil
}

// AddMigration installs the upgrade function from version v to v+1 for the
// named state.
func (r *SchemaRegistry) AddMigration(name string, fromVersion int, m Migration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.migrations[name] == nil {
		r.migrations[name] = make(map[int]Migration)
	}
	r.migrations[name][fromVersion] = m
}

// CurrentVersion returns the registered version for name (0 if unknown).
func (r *SchemaRegistry) CurrentVersion(name string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.current[name]
}

// Upgrade migrates a payload from its stored version to the current one.
func (r *SchemaRegistry) Upgrade(name string, storedVersion int, v any) (any, error) {
	r.mu.Lock()
	target := r.current[name]
	chain := r.migrations[name]
	r.mu.Unlock()
	for ver := storedVersion; ver < target; ver++ {
		m, ok := chain[ver]
		if !ok {
			return nil, fmt.Errorf("state: no migration for %q from v%d to v%d", name, ver, ver+1)
		}
		var err error
		v, err = m(v)
		if err != nil {
			return nil, fmt.Errorf("state: migration %q v%d->v%d: %w", name, ver, ver+1, err)
		}
	}
	return v, nil
}

// Versions returns the known state names and their current versions, sorted.
func (r *SchemaRegistry) Versions() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.current))
	for n, v := range r.current {
		out = append(out, fmt.Sprintf("%s@v%d", n, v))
	}
	sort.Strings(out)
	return out
}

// VersionedValue wraps a ValueState so writes are stamped with the current
// schema version and reads transparently upgrade older payloads.
type VersionedValue struct {
	inner    ValueState
	name     string
	registry *SchemaRegistry
	// LastError records the most recent migration failure, if any; reads
	// that fail migration behave as absent.
	LastError error
}

// NewVersionedValue wraps inner under the registry's schema for name.
func NewVersionedValue(inner ValueState, name string, registry *SchemaRegistry) *VersionedValue {
	return &VersionedValue{inner: inner, name: name, registry: registry}
}

// Get returns the value upgraded to the current schema version.
func (s *VersionedValue) Get() (any, bool) {
	raw, ok := s.inner.Get()
	if !ok {
		return nil, false
	}
	vv, ok := raw.(versioned)
	if !ok {
		// Unversioned legacy payload: treat as version 0.
		vv = versioned{Version: 0, V: raw}
	}
	cur := s.registry.CurrentVersion(s.name)
	if vv.Version == cur {
		return vv.V, true
	}
	up, err := s.registry.Upgrade(s.name, vv.Version, vv.V)
	if err != nil {
		s.LastError = err
		return nil, false
	}
	// Write back the upgraded payload so migration is one-time.
	s.inner.Set(versioned{Version: cur, V: up})
	return up, true
}

// Set stores the value at the current schema version.
func (s *VersionedValue) Set(v any) {
	s.inner.Set(versioned{Version: s.registry.CurrentVersion(s.name), V: v})
}

// Clear removes the value.
func (s *VersionedValue) Clear() { s.inner.Clear() }

var _ ValueState = (*VersionedValue)(nil)
