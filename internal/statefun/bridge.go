package statefun

import (
	"repro/internal/core"
)

// Bridge embeds a stateful-functions universe inside a dataflow pipeline —
// the "streams on Actors vs Actors on streams" convergence §4.1 describes.
// Each stream event becomes a function invocation (routed by toMsg); values
// the functions Egress are emitted downstream when the operator observes a
// watermark (the universe is drained first, so emissions are causally
// complete up to that point) and at end of stream.
//
// Run with parallelism 1: the runtime already parallelises across addresses
// internally.
func Bridge(s *core.Stream, name string, rt *Runtime,
	toMsg func(e core.Event) (Address, any, bool),
	toEvent func(egress any) (core.Event, bool)) *core.Stream {
	fac := func() core.Operator {
		return &bridgeOp{rt: rt, toMsg: toMsg, toEvent: toEvent}
	}
	return s.ProcessWith(name, fac, 1)
}

type bridgeOp struct {
	core.BaseOperator
	rt      *Runtime
	toMsg   func(e core.Event) (Address, any, bool)
	toEvent func(egress any) (core.Event, bool)
	drained int // egress values already forwarded
}

func (o *bridgeOp) Open(core.Context) error {
	o.rt.Start()
	return nil
}

func (o *bridgeOp) ProcessElement(e core.Event, ctx core.Context) error {
	if addr, payload, ok := o.toMsg(e); ok {
		o.rt.Send(addr, payload)
	}
	return nil
}

// OnWatermark drains the function universe and forwards new egress values.
func (o *bridgeOp) OnWatermark(_ int64, ctx core.Context) error {
	o.rt.Drain()
	o.flush(ctx)
	return nil
}

// Close drains one final time.
func (o *bridgeOp) Close(ctx core.Context) error {
	o.rt.Drain()
	o.flush(ctx)
	return nil
}

func (o *bridgeOp) flush(ctx core.Context) {
	values := o.rt.EgressValues()
	for ; o.drained < len(values); o.drained++ {
		if ev, ok := o.toEvent(values[o.drained]); ok {
			ctx.Emit(ev)
		}
	}
}
