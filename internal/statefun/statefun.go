// Package statefun implements a stateful-functions / virtual-actor runtime —
// the §4.1 observation that "stream processing technology is being used as a
// backend for Actor-like abstractions such as Stateful Functions tailored
// for Cloud deployment". Functions are addressable by (type, id); each
// address owns durable state and processes its messages serially, while
// different addresses run in parallel across workers; messages between
// functions are asynchronous feedback (the loops of §4.2), and request/
// response is expressed with Reply.
package statefun

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/state"
)

// Address identifies one logical function instance (virtual actor).
type Address struct {
	Type string
	ID   string
}

// String renders the address.
func (a Address) String() string { return a.Type + "/" + a.ID }

// Message is one delivery to a function.
type Message struct {
	From    Address
	To      Address
	Payload any
}

// Context is handed to a function per invocation.
type Context interface {
	// Self returns the invoked address.
	Self() Address
	// Caller returns the sending address (zero for ingress messages).
	Caller() Address
	// State returns the address's durable value state.
	State() state.ValueState
	// Send delivers a message to another function asynchronously.
	Send(to Address, payload any)
	// Reply sends back to the caller; it is a no-op for ingress messages.
	Reply(payload any)
	// Egress emits a value out of the function universe (to the enclosing
	// pipeline or test harness).
	Egress(payload any)
}

// Function is user logic bound to an address type.
type Function func(ctx Context, msg Message) error

// Runtime hosts functions over a worker pool: per-address serial execution,
// cross-address parallelism, durable per-address state in a managed backend.
type Runtime struct {
	mu        sync.Mutex
	functions map[string]Function
	backends  []*state.MemoryBackend // one per worker: single-writer state
	workers   int
	queues    []chan Message
	wg        sync.WaitGroup
	inflight  atomic.Int64
	idleCond  *sync.Cond
	started   bool
	stopped   bool

	egressMu sync.Mutex
	egress   []any

	// Invocations counts function executions.
	Invocations atomic.Int64
	failMu      sync.Mutex
	failures    []error
}

// NewRuntime returns a runtime with the given worker parallelism.
func NewRuntime(workers int) *Runtime {
	if workers < 1 {
		workers = 1
	}
	r := &Runtime{
		functions: make(map[string]Function),
		workers:   workers,
	}
	r.idleCond = sync.NewCond(&r.mu)
	for i := 0; i < workers; i++ {
		r.backends = append(r.backends, state.NewMemoryBackend(0))
		r.queues = append(r.queues, make(chan Message, 1024))
	}
	return r
}

// Register binds a function to an address type. Must be called before Start.
func (r *Runtime) Register(fnType string, fn Function) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.started {
		return fmt.Errorf("statefun: cannot register %q after start", fnType)
	}
	if _, dup := r.functions[fnType]; dup {
		return fmt.Errorf("statefun: function type %q already registered", fnType)
	}
	r.functions[fnType] = fn
	return nil
}

// Start launches the workers.
func (r *Runtime) Start() {
	r.mu.Lock()
	if r.started {
		r.mu.Unlock()
		return
	}
	r.started = true
	r.mu.Unlock()
	for i := 0; i < r.workers; i++ {
		r.wg.Add(1)
		go r.worker(i)
	}
}

// workerFor routes an address to its worker: all messages of one address
// land on one worker, giving per-address serial execution.
func (r *Runtime) workerFor(a Address) int {
	return state.KeyGroupFor(a.String(), r.workers)
}

// Send delivers an ingress message into the function universe.
func (r *Runtime) Send(to Address, payload any) {
	r.enqueue(Message{To: to, Payload: payload})
}

func (r *Runtime) enqueue(m Message) {
	r.inflight.Add(1)
	r.queues[r.workerFor(m.To)] <- m
}

func (r *Runtime) worker(idx int) {
	defer r.wg.Done()
	backend := r.backends[idx]
	for m := range r.queues[idx] {
		r.invoke(backend, m)
		if r.inflight.Add(-1) == 0 {
			// Broadcast under the mutex so a Drain that just checked the
			// counter cannot miss the wakeup.
			r.mu.Lock()
			r.idleCond.Broadcast()
			r.mu.Unlock()
		}
	}
}

func (r *Runtime) invoke(backend *state.MemoryBackend, m Message) {
	r.mu.Lock()
	fn, ok := r.functions[m.To.Type]
	r.mu.Unlock()
	if !ok {
		r.recordFailure(fmt.Errorf("statefun: no function registered for type %q", m.To.Type))
		return
	}
	backend.SetCurrentKey(m.To.String())
	ctx := &fnContext{rt: r, backend: backend, self: m.To, caller: m.From}
	r.Invocations.Add(1)
	if err := fn(ctx, m); err != nil {
		r.recordFailure(fmt.Errorf("statefun: %s: %w", m.To, err))
	}
}

func (r *Runtime) recordFailure(err error) {
	r.failMu.Lock()
	r.failures = append(r.failures, err)
	r.failMu.Unlock()
}

// Failures returns function errors recorded so far.
func (r *Runtime) Failures() []error {
	r.failMu.Lock()
	defer r.failMu.Unlock()
	return append([]error(nil), r.failures...)
}

// Drain blocks until the universe is quiescent: no message in flight and no
// function running.
func (r *Runtime) Drain() {
	r.mu.Lock()
	for r.inflight.Load() != 0 {
		r.idleCond.Wait()
	}
	r.mu.Unlock()
}

// Stop drains and terminates the workers.
func (r *Runtime) Stop() {
	r.Drain()
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return
	}
	r.stopped = true
	r.mu.Unlock()
	for _, q := range r.queues {
		close(q)
	}
	r.wg.Wait()
}

// EgressValues returns everything emitted via Context.Egress.
func (r *Runtime) EgressValues() []any {
	r.egressMu.Lock()
	defer r.egressMu.Unlock()
	return append([]any(nil), r.egress...)
}

// StateOf reads a function instance's state directly (tests, queryable
// state). It must only be called while the runtime is quiescent.
func (r *Runtime) StateOf(a Address) (any, bool) {
	b := r.backends[r.workerFor(a)]
	b.SetCurrentKey(a.String())
	return b.Value("state").Get()
}

type fnContext struct {
	rt      *Runtime
	backend *state.MemoryBackend
	self    Address
	caller  Address
}

func (c *fnContext) Self() Address   { return c.self }
func (c *fnContext) Caller() Address { return c.caller }

func (c *fnContext) State() state.ValueState {
	c.backend.SetCurrentKey(c.self.String())
	return c.backend.Value("state")
}

func (c *fnContext) Send(to Address, payload any) {
	c.rt.enqueue(Message{From: c.self, To: to, Payload: payload})
}

func (c *fnContext) Reply(payload any) {
	if c.caller == (Address{}) {
		return
	}
	c.rt.enqueue(Message{From: c.self, To: c.caller, Payload: payload})
}

func (c *fnContext) Egress(payload any) {
	c.rt.egressMu.Lock()
	c.rt.egress = append(c.rt.egress, payload)
	c.rt.egressMu.Unlock()
}
