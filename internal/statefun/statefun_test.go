package statefun

import (
	"context"
	"time"

	"fmt"
	"repro/internal/core"
	"testing"
)

func TestCounterFunction(t *testing.T) {
	rt := NewRuntime(4)
	err := rt.Register("counter", func(ctx Context, msg Message) error {
		st := ctx.State()
		n := int64(0)
		if v, ok := st.Get(); ok {
			n = v.(int64)
		}
		n++
		st.Set(n)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	defer rt.Stop()
	for i := 0; i < 100; i++ {
		rt.Send(Address{Type: "counter", ID: fmt.Sprintf("c%d", i%3)}, "tick")
	}
	rt.Drain()
	total := int64(0)
	for i := 0; i < 3; i++ {
		v, ok := rt.StateOf(Address{Type: "counter", ID: fmt.Sprintf("c%d", i)})
		if !ok {
			t.Fatalf("counter c%d has no state", i)
		}
		total += v.(int64)
	}
	if total != 100 {
		t.Fatalf("want 100 total increments, got %d", total)
	}
	if rt.Invocations.Load() != 100 {
		t.Fatalf("want 100 invocations, got %d", rt.Invocations.Load())
	}
}

func TestRequestResponseBetweenFunctions(t *testing.T) {
	// "client" asks "doubler" to double a number; doubler replies; client
	// egresses the answer — the async request/response loop of §4.2.
	rt := NewRuntime(2)
	rt.Register("doubler", func(ctx Context, msg Message) error {
		n := msg.Payload.(int)
		ctx.Reply(n * 2)
		return nil
	})
	rt.Register("client", func(ctx Context, msg Message) error {
		switch v := msg.Payload.(type) {
		case int:
			if ctx.Caller().Type == "doubler" {
				ctx.Egress(v)
			} else {
				ctx.Send(Address{Type: "doubler", ID: "d1"}, v)
			}
		}
		return nil
	})
	rt.Start()
	defer rt.Stop()
	rt.Send(Address{Type: "client", ID: "c1"}, 21)
	rt.Drain()
	out := rt.EgressValues()
	if len(out) != 1 || out[0].(int) != 42 {
		t.Fatalf("request/response failed: %v", out)
	}
}

func TestPerAddressSerialExecution(t *testing.T) {
	// Many concurrent sends to ONE address must serialise: the final count
	// is exact without any locking in user code.
	rt := NewRuntime(8)
	rt.Register("acc", func(ctx Context, msg Message) error {
		st := ctx.State()
		n := int64(0)
		if v, ok := st.Get(); ok {
			n = v.(int64)
		}
		st.Set(n + 1)
		return nil
	})
	rt.Start()
	defer rt.Stop()
	const n = 5000
	for i := 0; i < n; i++ {
		rt.Send(Address{Type: "acc", ID: "single"}, nil)
	}
	rt.Drain()
	v, _ := rt.StateOf(Address{Type: "acc", ID: "single"})
	if v.(int64) != n {
		t.Fatalf("lost updates: want %d, got %d", n, v.(int64))
	}
}

func TestFanOutFanIn(t *testing.T) {
	// A coordinator scatters work to workers and gathers replies —
	// the microservice orchestration shape of §4.1.
	rt := NewRuntime(4)
	rt.Register("worker", func(ctx Context, msg Message) error {
		ctx.Reply(msg.Payload.(int) * msg.Payload.(int))
		return nil
	})
	rt.Register("coord", func(ctx Context, msg Message) error {
		st := ctx.State()
		if caller := ctx.Caller(); caller.Type == "worker" {
			acc := int64(0)
			if v, ok := st.Get(); ok {
				acc = v.(int64)
			}
			acc += int64(msg.Payload.(int))
			st.Set(acc)
			return nil
		}
		for i := 1; i <= msg.Payload.(int); i++ {
			ctx.Send(Address{Type: "worker", ID: fmt.Sprintf("w%d", i%4)}, i)
		}
		return nil
	})
	rt.Start()
	defer rt.Stop()
	rt.Send(Address{Type: "coord", ID: "c"}, 10)
	rt.Drain()
	v, _ := rt.StateOf(Address{Type: "coord", ID: "c"})
	if v.(int64) != 385 { // sum of squares 1..10
		t.Fatalf("fan-in sum: want 385, got %v", v)
	}
}

func TestUnknownTypeRecordsFailure(t *testing.T) {
	rt := NewRuntime(1)
	rt.Start()
	defer rt.Stop()
	rt.Send(Address{Type: "ghost", ID: "x"}, nil)
	rt.Drain()
	if len(rt.Failures()) != 1 {
		t.Fatalf("want 1 failure, got %d", len(rt.Failures()))
	}
}

func TestRegisterAfterStartRejected(t *testing.T) {
	rt := NewRuntime(1)
	rt.Start()
	defer rt.Stop()
	if err := rt.Register("late", nil); err == nil {
		t.Fatal("late registration accepted")
	}
}

func TestDuplicateRegistrationRejected(t *testing.T) {
	rt := NewRuntime(1)
	rt.Register("x", func(Context, Message) error { return nil })
	if err := rt.Register("x", func(Context, Message) error { return nil }); err == nil {
		t.Fatal("duplicate registration accepted")
	}
}

func TestBridgeEmbedsFunctionsInPipeline(t *testing.T) {
	// Stream events drive a counting function; egressed milestones flow back
	// into the pipeline as events.
	rt := NewRuntime(2)
	rt.Register("tally", func(ctx Context, msg Message) error {
		st := ctx.State()
		n := int64(0)
		if v, ok := st.Get(); ok {
			n = v.(int64)
		}
		n++
		st.Set(n)
		if n%10 == 0 {
			ctx.Egress(fmt.Sprintf("%s:%d", ctx.Self().ID, n))
		}
		return nil
	})
	defer rt.Stop()

	var events []core.Event
	for i := 0; i < 100; i++ {
		events = append(events, core.Event{
			Key:       fmt.Sprintf("u%d", i%2),
			Timestamp: int64(i),
			Value:     int64(1),
		})
	}
	sink := core.NewCollectSink()
	b := core.NewBuilder(core.Config{Name: "bridge", WatermarkInterval: 8})
	s := b.Source("src", core.NewSliceSourceFactory(events), core.WithBoundedDisorder(0))
	Bridge(s, "functions", rt,
		func(e core.Event) (Address, any, bool) {
			return Address{Type: "tally", ID: e.Key}, e.Value, true
		},
		func(egress any) (core.Event, bool) {
			return core.Event{Key: "milestone", Value: egress}, true
		}).Sink("out", sink.Factory())
	j, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := j.Run(ctx); err != nil {
		t.Fatal(err)
	}
	// 50 events per user -> milestones at 10,20,30,40,50 for each of 2 users.
	if sink.Len() != 10 {
		t.Fatalf("want 10 milestones, got %d: %v", sink.Len(), sink.Events())
	}
	v0, _ := rt.StateOf(Address{Type: "tally", ID: "u0"})
	v1, _ := rt.StateOf(Address{Type: "tally", ID: "u1"})
	if v0.(int64)+v1.(int64) != 100 {
		t.Fatalf("function state wrong: %v + %v", v0, v1)
	}
}
