package synopsis

import (
	"fmt"
	"math"
)

// Bloom is a Bloom filter: a set-membership summary with no false negatives
// and a tunable false-positive probability.
type Bloom struct {
	bits  []uint64
	m     uint64 // number of bits
	k     int    // number of hash functions
	added uint64
}

// NewBloom returns a filter sized for the expected number of items and the
// target false-positive probability.
func NewBloom(expectedItems int, fpProb float64) (*Bloom, error) {
	if expectedItems <= 0 {
		return nil, fmt.Errorf("synopsis: expectedItems must be positive, got %d", expectedItems)
	}
	if fpProb <= 0 || fpProb >= 1 {
		return nil, fmt.Errorf("synopsis: fpProb must be in (0,1), got %v", fpProb)
	}
	n := float64(expectedItems)
	m := math.Ceil(-n * math.Log(fpProb) / (math.Ln2 * math.Ln2))
	k := int(math.Round(m / n * math.Ln2))
	if k < 1 {
		k = 1
	}
	mb := uint64(m)
	if mb < 64 {
		mb = 64
	}
	return &Bloom{bits: make([]uint64, (mb+63)/64), m: mb, k: k}, nil
}

// Add inserts key into the filter.
func (b *Bloom) Add(key string) {
	h1 := hash64(key, 0x51ed2701)
	h2 := hash64(key, 0xb5297a4d)
	for i := 0; i < b.k; i++ {
		idx := (h1 + uint64(i)*h2) % b.m
		b.bits[idx/64] |= 1 << (idx % 64)
	}
	b.added++
}

// MayContain reports whether key may have been added; false means definitely
// not present.
func (b *Bloom) MayContain(key string) bool {
	h1 := hash64(key, 0x51ed2701)
	h2 := hash64(key, 0xb5297a4d)
	for i := 0; i < b.k; i++ {
		idx := (h1 + uint64(i)*h2) % b.m
		if b.bits[idx/64]&(1<<(idx%64)) == 0 {
			return false
		}
	}
	return true
}

// Bytes returns the memory footprint in bytes.
func (b *Bloom) Bytes() int { return len(b.bits) * 8 }

// Added returns how many keys were inserted (duplicates counted).
func (b *Bloom) Added() uint64 { return b.added }
