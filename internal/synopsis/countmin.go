// Package synopsis implements the bounded-memory approximate summaries that
// 1st-generation stream systems used as operator state (§3.1 of the paper:
// "summary", "synopsis", "sketch"): Count-Min sketches, Bloom filters,
// HyperLogLog cardinality estimators, reservoir samples, and exponential
// histograms for sliding-window counts. Experiment E9 compares them against
// exact state on memory and accuracy.
package synopsis

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
)

// CountMin is a Count-Min sketch: a frequency summary answering point queries
// with additive error at most ε·N with probability 1-δ, using
// width=ceil(e/ε) × depth=ceil(ln 1/δ) counters.
type CountMin struct {
	width  int
	depth  int
	counts [][]uint64
	seeds  []uint64
	total  uint64
}

// NewCountMin returns a sketch with the given error bound ε and failure
// probability δ.
func NewCountMin(epsilon, delta float64) (*CountMin, error) {
	if epsilon <= 0 || epsilon >= 1 {
		return nil, fmt.Errorf("synopsis: epsilon must be in (0,1), got %v", epsilon)
	}
	if delta <= 0 || delta >= 1 {
		return nil, fmt.Errorf("synopsis: delta must be in (0,1), got %v", delta)
	}
	width := int(math.Ceil(math.E / epsilon))
	depth := int(math.Ceil(math.Log(1 / delta)))
	return NewCountMinWithSize(width, depth), nil
}

// NewCountMinWithSize returns a sketch with explicit dimensions.
func NewCountMinWithSize(width, depth int) *CountMin {
	if width < 1 {
		width = 1
	}
	if depth < 1 {
		depth = 1
	}
	cm := &CountMin{
		width:  width,
		depth:  depth,
		counts: make([][]uint64, depth),
		seeds:  make([]uint64, depth),
	}
	for i := range cm.counts {
		cm.counts[i] = make([]uint64, width)
		cm.seeds[i] = uint64(i)*0x9e3779b97f4a7c15 + 0x1234567890abcdef
	}
	return cm
}

func hash64(s string, seed uint64) uint64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], seed)
	h.Write(b[:])
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is a splitmix64-style finalizer. FNV's high bits avalanche poorly for
// short keys, which would skew any consumer that indexes by high bits (the
// HyperLogLog register index in particular); the finalizer spreads entropy
// across the whole word.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Add increments the count of key by n.
func (cm *CountMin) Add(key string, n uint64) {
	for i := 0; i < cm.depth; i++ {
		idx := hash64(key, cm.seeds[i]) % uint64(cm.width)
		cm.counts[i][idx] += n
	}
	cm.total += n
}

// Estimate returns an upper-bounded estimate of key's count.
func (cm *CountMin) Estimate(key string) uint64 {
	min := uint64(math.MaxUint64)
	for i := 0; i < cm.depth; i++ {
		idx := hash64(key, cm.seeds[i]) % uint64(cm.width)
		if c := cm.counts[i][idx]; c < min {
			min = c
		}
	}
	return min
}

// Total returns the total weight added.
func (cm *CountMin) Total() uint64 { return cm.total }

// Bytes returns the approximate memory footprint of the sketch in bytes.
func (cm *CountMin) Bytes() int { return cm.width * cm.depth * 8 }

// Merge adds another sketch with identical dimensions into this one.
func (cm *CountMin) Merge(other *CountMin) error {
	if cm.width != other.width || cm.depth != other.depth {
		return fmt.Errorf("synopsis: cannot merge sketches of different sizes (%dx%d vs %dx%d)",
			cm.width, cm.depth, other.width, other.depth)
	}
	for i := range cm.counts {
		for j := range cm.counts[i] {
			cm.counts[i][j] += other.counts[i][j]
		}
	}
	cm.total += other.total
	return nil
}
