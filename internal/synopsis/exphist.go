package synopsis

import "fmt"

// ExpHistogram is an exponential histogram (Datar-Gionis-Indyk-Motwani) that
// approximates the count of 1s in a sliding time window of width W using
// O(1/ε · log²W) space, with relative error at most ε. It is the classic
// synopsis for sliding-window aggregation under bounded memory (§3.1).
type ExpHistogram struct {
	window int64 // window width in time units
	k      int   // buckets per size class = ceil(1/eps); error <= 1/(k+1)
	// buckets ordered from newest to oldest; each bucket covers `size` ones
	// with the latest at time `ts`.
	buckets []ehBucket
	total   int64 // sum of bucket sizes currently held
	last    int64 // timestamp of latest event, for expiry
}

type ehBucket struct {
	ts   int64
	size int64
}

// NewExpHistogram returns a histogram for the given window width and relative
// error bound ε.
func NewExpHistogram(window int64, epsilon float64) (*ExpHistogram, error) {
	if window <= 0 {
		return nil, fmt.Errorf("synopsis: window must be positive, got %d", window)
	}
	if epsilon <= 0 || epsilon >= 1 {
		return nil, fmt.Errorf("synopsis: epsilon must be in (0,1), got %v", epsilon)
	}
	k := int(1/epsilon + 0.5)
	if k < 1 {
		k = 1
	}
	return &ExpHistogram{window: window, k: k}, nil
}

// Add records a 1-valued event at the given (non-decreasing) timestamp.
func (e *ExpHistogram) Add(ts int64) {
	e.last = ts
	e.expire(ts)
	e.buckets = append([]ehBucket{{ts: ts, size: 1}}, e.buckets...)
	e.total++
	e.merge()
}

// expire drops buckets whose latest timestamp falls outside the window.
func (e *ExpHistogram) expire(now int64) {
	cut := now - e.window
	for len(e.buckets) > 0 {
		oldest := e.buckets[len(e.buckets)-1]
		if oldest.ts > cut {
			break
		}
		e.buckets = e.buckets[:len(e.buckets)-1]
		e.total -= oldest.size
	}
}

// merge enforces the invariant of at most k+1 buckets per size class by
// merging the two oldest buckets of an overfull class.
func (e *ExpHistogram) merge() {
	for {
		merged := false
		count := 0
		size := int64(1)
		for i := 0; i < len(e.buckets); i++ {
			if e.buckets[i].size == size {
				count++
				if count > e.k+1 {
					// Merge this bucket with the previous same-size bucket
					// (the older of the pair keeps the newer timestamp of the
					// two — conservative for expiry).
					j := i - 1
					e.buckets[i].size *= 2
					e.buckets[i].ts = e.buckets[j].ts
					e.buckets = append(e.buckets[:j], e.buckets[j+1:]...)
					merged = true
					break
				}
			} else if e.buckets[i].size > size {
				size = e.buckets[i].size
				count = 1
			}
		}
		if !merged {
			return
		}
	}
}

// Estimate returns the approximate count of events within the window ending
// at the latest observed timestamp: all complete buckets plus half of the
// oldest (partially expired) one.
func (e *ExpHistogram) Estimate() int64 {
	e.expire(e.last)
	if len(e.buckets) == 0 {
		return 0
	}
	oldest := e.buckets[len(e.buckets)-1].size
	return e.total - oldest + (oldest+1)/2
}

// Buckets returns the number of buckets currently held (the space cost).
func (e *ExpHistogram) Buckets() int { return len(e.buckets) }
