package synopsis

import (
	"fmt"
	"math"
	"math/bits"
)

// HyperLogLog estimates the number of distinct elements in a stream using
// m = 2^precision one-byte registers, with standard error ~1.04/sqrt(m).
type HyperLogLog struct {
	precision uint8
	registers []uint8
}

// NewHyperLogLog returns an estimator with the given precision (4..16).
func NewHyperLogLog(precision uint8) (*HyperLogLog, error) {
	if precision < 4 || precision > 16 {
		return nil, fmt.Errorf("synopsis: precision must be in [4,16], got %d", precision)
	}
	return &HyperLogLog{precision: precision, registers: make([]uint8, 1<<precision)}, nil
}

// Add observes a key.
func (h *HyperLogLog) Add(key string) {
	x := hash64(key, 0x1b873593)
	idx := x >> (64 - h.precision)
	rest := x<<h.precision | 1<<(h.precision-1) // ensure non-zero
	rank := uint8(bits.LeadingZeros64(rest)) + 1
	if rank > h.registers[idx] {
		h.registers[idx] = rank
	}
}

// Estimate returns the estimated number of distinct keys added.
func (h *HyperLogLog) Estimate() uint64 {
	m := float64(len(h.registers))
	var sum float64
	zeros := 0
	for _, r := range h.registers {
		sum += 1 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	alpha := 0.7213 / (1 + 1.079/m)
	est := alpha * m * m / sum
	// Small-range correction (linear counting).
	if est <= 2.5*m && zeros > 0 {
		est = m * math.Log(m/float64(zeros))
	}
	return uint64(est + 0.5)
}

// Merge folds another estimator with identical precision into this one.
func (h *HyperLogLog) Merge(other *HyperLogLog) error {
	if h.precision != other.precision {
		return fmt.Errorf("synopsis: cannot merge HLLs with precision %d and %d", h.precision, other.precision)
	}
	for i, r := range other.registers {
		if r > h.registers[i] {
			h.registers[i] = r
		}
	}
	return nil
}

// Bytes returns the memory footprint in bytes.
func (h *HyperLogLog) Bytes() int { return len(h.registers) }
