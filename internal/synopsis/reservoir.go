package synopsis

import (
	"fmt"
	"math/rand"
)

// Reservoir maintains a uniform random sample of fixed size k over an
// unbounded stream (Vitter's algorithm R).
type Reservoir struct {
	k      int
	seen   int64
	sample []any
	rng    *rand.Rand
}

// NewReservoir returns a reservoir of capacity k using the given seed for
// deterministic experiments.
func NewReservoir(k int, seed int64) (*Reservoir, error) {
	if k <= 0 {
		return nil, fmt.Errorf("synopsis: reservoir size must be positive, got %d", k)
	}
	return &Reservoir{k: k, rng: rand.New(rand.NewSource(seed))}, nil
}

// Add offers an element to the sample.
func (r *Reservoir) Add(v any) {
	r.seen++
	if len(r.sample) < r.k {
		r.sample = append(r.sample, v)
		return
	}
	if j := r.rng.Int63n(r.seen); j < int64(r.k) {
		r.sample[j] = v
	}
}

// Sample returns the current sample (shared slice; do not mutate).
func (r *Reservoir) Sample() []any { return r.sample }

// Seen returns how many elements were offered.
func (r *Reservoir) Seen() int64 { return r.seen }
