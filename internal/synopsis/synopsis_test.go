package synopsis

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCountMinNeverUnderestimates(t *testing.T) {
	cm, err := NewCountMin(0.01, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	exact := map[string]uint64{}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50000; i++ {
		k := fmt.Sprintf("k%d", rng.Intn(1000))
		cm.Add(k, 1)
		exact[k]++
	}
	for k, want := range exact {
		if got := cm.Estimate(k); got < want {
			t.Fatalf("CMS underestimated %q: %d < %d", k, got, want)
		}
	}
}

func TestCountMinErrorBound(t *testing.T) {
	// With ε=0.001 over N=100k adds, overestimation should be <= εN = 100
	// for the vast majority of keys (bound holds w.p. 1-δ per query).
	cm, err := NewCountMin(0.001, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	exact := map[string]uint64{}
	rng := rand.New(rand.NewSource(5))
	const n = 100000
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("k%d", int(math.Abs(rng.NormFloat64()*200)))
		cm.Add(k, 1)
		exact[k]++
	}
	violations := 0
	for k, want := range exact {
		if cm.Estimate(k) > want+uint64(0.001*float64(n)*2) {
			violations++
		}
	}
	if violations > len(exact)/100 {
		t.Fatalf("too many error-bound violations: %d of %d", violations, len(exact))
	}
}

func TestCountMinMerge(t *testing.T) {
	a := NewCountMinWithSize(512, 4)
	b := NewCountMinWithSize(512, 4)
	a.Add("x", 5)
	b.Add("x", 7)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if got := a.Estimate("x"); got < 12 {
		t.Fatalf("merged estimate: want >= 12, got %d", got)
	}
	c := NewCountMinWithSize(256, 4)
	if err := a.Merge(c); err == nil {
		t.Fatal("merging different sizes must fail")
	}
}

func TestCountMinRejectsBadParams(t *testing.T) {
	if _, err := NewCountMin(0, 0.1); err == nil {
		t.Fatal("epsilon 0 accepted")
	}
	if _, err := NewCountMin(0.1, 1); err == nil {
		t.Fatal("delta 1 accepted")
	}
}

func TestBloomNoFalseNegatives(t *testing.T) {
	check := func(keys []string) bool {
		b, err := NewBloom(len(keys)+1, 0.01)
		if err != nil {
			return false
		}
		for _, k := range keys {
			b.Add(k)
		}
		for _, k := range keys {
			if !b.MayContain(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBloomFalsePositiveRate(t *testing.T) {
	b, err := NewBloom(10000, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		b.Add(fmt.Sprintf("in-%d", i))
	}
	fp := 0
	const probes = 10000
	for i := 0; i < probes; i++ {
		if b.MayContain(fmt.Sprintf("out-%d", i)) {
			fp++
		}
	}
	if rate := float64(fp) / probes; rate > 0.03 {
		t.Fatalf("false positive rate too high: %v", rate)
	}
}

func TestHyperLogLogAccuracy(t *testing.T) {
	h, err := NewHyperLogLog(12) // ~1.6% standard error
	if err != nil {
		t.Fatal(err)
	}
	const n = 100000
	for i := 0; i < n; i++ {
		h.Add(fmt.Sprintf("item-%d", i))
	}
	est := float64(h.Estimate())
	if est < n*0.93 || est > n*1.07 {
		t.Fatalf("HLL estimate off: want ~%d, got %v", n, est)
	}
}

func TestHyperLogLogSmallRange(t *testing.T) {
	h, _ := NewHyperLogLog(10)
	for i := 0; i < 10; i++ {
		h.Add(fmt.Sprintf("x%d", i))
	}
	est := h.Estimate()
	if est < 8 || est > 12 {
		t.Fatalf("small-range correction failed: want ~10, got %d", est)
	}
}

func TestHyperLogLogMerge(t *testing.T) {
	a, _ := NewHyperLogLog(12)
	b, _ := NewHyperLogLog(12)
	for i := 0; i < 5000; i++ {
		a.Add(fmt.Sprintf("a%d", i))
		b.Add(fmt.Sprintf("b%d", i))
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	est := float64(a.Estimate())
	if est < 9000 || est > 11000 {
		t.Fatalf("merged estimate: want ~10000, got %v", est)
	}
	c, _ := NewHyperLogLog(10)
	if err := a.Merge(c); err == nil {
		t.Fatal("merging different precisions must fail")
	}
}

func TestReservoirUniformity(t *testing.T) {
	// Sample 100 of 10000 integers many times; the mean of sampled values
	// should be close to the population mean.
	const k, n = 100, 10000
	var grand float64
	const trials = 50
	for trial := 0; trial < trials; trial++ {
		r, err := NewReservoir(k, int64(trial))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			r.Add(float64(i))
		}
		if r.Seen() != n {
			t.Fatalf("seen: want %d, got %d", n, r.Seen())
		}
		if len(r.Sample()) != k {
			t.Fatalf("sample size: want %d, got %d", k, len(r.Sample()))
		}
		var sum float64
		for _, v := range r.Sample() {
			sum += v.(float64)
		}
		grand += sum / k
	}
	mean := grand / trials
	if mean < 4500 || mean > 5500 {
		t.Fatalf("reservoir not uniform: mean of sample means %v, want ~5000", mean)
	}
}

func TestReservoirSmallStream(t *testing.T) {
	r, _ := NewReservoir(10, 1)
	r.Add(1)
	r.Add(2)
	if len(r.Sample()) != 2 {
		t.Fatalf("stream smaller than k keeps everything, got %d", len(r.Sample()))
	}
}

func TestExpHistogramApproximatesWindowCount(t *testing.T) {
	eh, err := NewExpHistogram(1000, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// One event per tick for 5000 ticks; the window of 1000 should hold
	// ~1000 events within 10% error.
	for ts := int64(0); ts < 5000; ts++ {
		eh.Add(ts)
	}
	est := float64(eh.Estimate())
	if est < 850 || est > 1150 {
		t.Fatalf("exp histogram estimate: want ~1000, got %v", est)
	}
	// Space must be logarithmic, not linear, in window size.
	if eh.Buckets() > 200 {
		t.Fatalf("exp histogram using too many buckets: %d", eh.Buckets())
	}
}

func TestExpHistogramEmptyAndExpiry(t *testing.T) {
	eh, _ := NewExpHistogram(100, 0.1)
	if eh.Estimate() != 0 {
		t.Fatal("empty estimate should be 0")
	}
	eh.Add(0)
	eh.Add(1000) // first event far outside window
	if est := eh.Estimate(); est > 1 {
		t.Fatalf("expired events still counted: %d", est)
	}
}

func TestSynopsisParamValidation(t *testing.T) {
	if _, err := NewBloom(0, 0.1); err == nil {
		t.Fatal("bloom with 0 items accepted")
	}
	if _, err := NewHyperLogLog(3); err == nil {
		t.Fatal("HLL precision 3 accepted")
	}
	if _, err := NewReservoir(0, 1); err == nil {
		t.Fatal("reservoir size 0 accepted")
	}
	if _, err := NewExpHistogram(0, 0.1); err == nil {
		t.Fatal("exp histogram window 0 accepted")
	}
	if _, err := NewExpHistogram(10, 2); err == nil {
		t.Fatal("exp histogram epsilon 2 accepted")
	}
}
