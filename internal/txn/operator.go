package txn

import (
	"repro/internal/core"
)

// TxnFunc maps a stream event to a transaction: the keys it touches and the
// body. Emitting happens through the returned events so side effects only
// leave the operator when the transaction committed — exactly-once output
// relative to the store.
type TxnFunc func(e core.Event) (keys []string, body func(tx *Tx) ([]core.Event, error))

// Operator attaches a transactional operator to a stream: every event runs
// one serializable transaction against the shared store. Aborted
// transactions emit nothing (their events count in Store.Aborts).
func Operator(s *core.Stream, name string, store *Store, fn TxnFunc) *core.Stream {
	fac := func() core.Operator {
		return &txnOperator{store: store, fn: fn}
	}
	return s.Process(name, fac)
}

type txnOperator struct {
	core.BaseOperator
	store *Store
	fn    TxnFunc
}

func (o *txnOperator) ProcessElement(e core.Event, ctx core.Context) error {
	keys, body := o.fn(e)
	var outs []core.Event
	err := o.store.Execute(keys, func(tx *Tx) error {
		var err error
		outs, err = body(tx)
		return err
	})
	if err != nil {
		// Aborts are expected application behaviour, not operator failures.
		return nil
	}
	for _, out := range outs {
		ctx.Emit(out)
	}
	return nil
}
