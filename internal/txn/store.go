// Package txn implements streaming transactions in the spirit of S-Store
// (§4.2 "Transactions": "streaming systems lack transactional facilities ...
// with the exception of S-Store, which provides ACID guarantees on shared
// mutable state"). It provides:
//
//   - a partitioned key-value store with serializable transactions using
//     ordered two-phase locking over pre-declared working sets (the
//     H-Store/S-Store execution discipline),
//   - transaction workflows spanning multiple steps with automatic
//     compensation on abort (the coordination pattern Cloud applications
//     need, §4.2), and
//   - an engine operator that executes one transaction per stream event,
//     giving dataflow pipelines ACID access to shared mutable state.
package txn

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/state"
)

// ErrAborted is returned when a transaction aborts via Tx.Abort or a
// callback error; all buffered writes are discarded.
var ErrAborted = errors.New("txn: aborted")

// Store is a partitioned, transactional key-value store. Keys hash to
// partitions; transactions declare their key set upfront and lock the
// involved partitions in a global order, making executions serializable and
// deadlock-free.
type Store struct {
	parts []*partition
	// Commits and Aborts count transaction outcomes.
	Commits atomic.Int64
	Aborts  atomic.Int64
}

type partition struct {
	mu   sync.Mutex
	data map[string]any
}

// NewStore creates a store with the given partition count.
func NewStore(partitions int) *Store {
	if partitions < 1 {
		partitions = 1
	}
	s := &Store{parts: make([]*partition, partitions)}
	for i := range s.parts {
		s.parts[i] = &partition{data: make(map[string]any)}
	}
	return s
}

// NumPartitions returns the partition count.
func (s *Store) NumPartitions() int { return len(s.parts) }

func (s *Store) partFor(key string) int {
	return state.KeyGroupFor(key, len(s.parts))
}

// Tx is an in-flight transaction handle. It is only valid inside Execute.
type Tx struct {
	store   *Store
	allowed map[string]bool
	writes  map[string]write
	aborted error
}

type write struct {
	v      any
	delete bool
}

// Get reads a key within the transaction (observing its own writes).
func (t *Tx) Get(key string) (any, bool, error) {
	if !t.allowed[key] {
		return nil, false, fmt.Errorf("txn: key %q not in declared working set", key)
	}
	if w, ok := t.writes[key]; ok {
		if w.delete {
			return nil, false, nil
		}
		return w.v, true, nil
	}
	p := t.store.parts[t.store.partFor(key)]
	v, ok := p.data[key]
	return v, ok, nil
}

// Set buffers a write; it becomes visible only on commit.
func (t *Tx) Set(key string, v any) error {
	if !t.allowed[key] {
		return fmt.Errorf("txn: key %q not in declared working set", key)
	}
	t.writes[key] = write{v: v}
	return nil
}

// Delete buffers a deletion.
func (t *Tx) Delete(key string) error {
	if !t.allowed[key] {
		return fmt.Errorf("txn: key %q not in declared working set", key)
	}
	t.writes[key] = write{delete: true}
	return nil
}

// Abort marks the transaction failed; Execute returns ErrAborted wrapping
// the cause.
func (t *Tx) Abort(cause error) {
	if cause == nil {
		cause = ErrAborted
	}
	t.aborted = cause
}

// Execute runs fn as a serializable transaction over the declared keys.
// On success the buffered writes are applied atomically; on error or
// Tx.Abort nothing is applied.
func (s *Store) Execute(keys []string, fn func(tx *Tx) error) error {
	// Lock the involved partitions in ascending order (global lock order ⇒
	// no deadlock; holding all locks for the duration ⇒ serializable).
	partSet := map[int]bool{}
	allowed := make(map[string]bool, len(keys))
	for _, k := range keys {
		partSet[s.partFor(k)] = true
		allowed[k] = true
	}
	parts := make([]int, 0, len(partSet))
	for p := range partSet {
		parts = append(parts, p)
	}
	sort.Ints(parts)
	for _, p := range parts {
		s.parts[p].mu.Lock()
	}
	defer func() {
		for i := len(parts) - 1; i >= 0; i-- {
			s.parts[parts[i]].mu.Unlock()
		}
	}()

	tx := &Tx{store: s, allowed: allowed, writes: map[string]write{}}
	err := fn(tx)
	if err == nil && tx.aborted != nil {
		err = tx.aborted
	}
	if err != nil {
		s.Aborts.Add(1)
		if errors.Is(err, ErrAborted) {
			return err
		}
		return fmt.Errorf("%w: %w", ErrAborted, err)
	}
	for k, w := range tx.writes {
		p := s.parts[s.partFor(k)]
		if w.delete {
			delete(p.data, k)
		} else {
			p.data[k] = w.v
		}
	}
	s.Commits.Add(1)
	return nil
}

// Read returns a key's value outside any transaction (single-key reads are
// trivially serializable).
func (s *Store) Read(key string) (any, bool) {
	p := s.parts[s.partFor(key)]
	p.mu.Lock()
	defer p.mu.Unlock()
	v, ok := p.data[key]
	return v, ok
}

// Snapshot copies the full store contents (acquiring all partitions — a
// consistent global snapshot).
func (s *Store) Snapshot() map[string]any {
	for _, p := range s.parts {
		p.mu.Lock()
	}
	defer func() {
		for i := len(s.parts) - 1; i >= 0; i-- {
			s.parts[i].mu.Unlock()
		}
	}()
	out := make(map[string]any)
	for _, p := range s.parts {
		for k, v := range p.data {
			out[k] = v
		}
	}
	return out
}
