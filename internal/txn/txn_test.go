package txn

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

func TestCommitAppliesWrites(t *testing.T) {
	s := NewStore(4)
	err := s.Execute([]string{"a"}, func(tx *Tx) error {
		return tx.Set("a", int64(1))
	})
	if err != nil {
		t.Fatal(err)
	}
	v, ok := s.Read("a")
	if !ok || v.(int64) != 1 {
		t.Fatalf("committed write lost: %v %v", v, ok)
	}
	if s.Commits.Load() != 1 {
		t.Fatalf("commit count: %d", s.Commits.Load())
	}
}

func TestAbortDiscardsWrites(t *testing.T) {
	s := NewStore(4)
	s.Execute([]string{"a"}, func(tx *Tx) error { return tx.Set("a", int64(1)) })
	err := s.Execute([]string{"a"}, func(tx *Tx) error {
		if err := tx.Set("a", int64(99)); err != nil {
			return err
		}
		tx.Abort(errors.New("changed my mind"))
		return nil
	})
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("want ErrAborted, got %v", err)
	}
	v, _ := s.Read("a")
	if v.(int64) != 1 {
		t.Fatalf("aborted write applied: %v", v)
	}
	if s.Aborts.Load() != 1 {
		t.Fatalf("abort count: %d", s.Aborts.Load())
	}
}

func TestReadYourOwnWrites(t *testing.T) {
	s := NewStore(2)
	err := s.Execute([]string{"x"}, func(tx *Tx) error {
		tx.Set("x", int64(5))
		v, ok, err := tx.Get("x")
		if err != nil || !ok || v.(int64) != 5 {
			return fmt.Errorf("own write invisible: %v %v %v", v, ok, err)
		}
		tx.Delete("x")
		if _, ok, _ := tx.Get("x"); ok {
			return fmt.Errorf("own delete invisible")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestUndeclaredKeyRejected(t *testing.T) {
	s := NewStore(2)
	err := s.Execute([]string{"a"}, func(tx *Tx) error {
		return tx.Set("b", 1)
	})
	if err == nil {
		t.Fatal("write outside working set accepted")
	}
	if _, ok := s.Read("b"); ok {
		t.Fatal("rejected write leaked")
	}
}

// TestConcurrentTransfersPreserveTotal is the serializability property test:
// concurrent conflicting transfers never create or destroy money.
func TestConcurrentTransfersPreserveTotal(t *testing.T) {
	s := NewStore(8)
	const accounts = 20
	const initial = int64(1000)
	for i := 0; i < accounts; i++ {
		k := fmt.Sprintf("acct%d", i)
		s.Execute([]string{k}, func(tx *Tx) error { return tx.Set(k, initial) })
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 500; i++ {
				from := fmt.Sprintf("acct%d", rng.Intn(accounts))
				to := fmt.Sprintf("acct%d", rng.Intn(accounts))
				if from == to {
					continue
				}
				amt := int64(rng.Intn(50))
				s.Execute([]string{from, to}, func(tx *Tx) error {
					fv, _, _ := tx.Get(from)
					tv, _, _ := tx.Get(to)
					fb, tb := fv.(int64), tv.(int64)
					if fb < amt {
						tx.Abort(nil)
						return nil
					}
					tx.Set(from, fb-amt)
					tx.Set(to, tb+amt)
					return nil
				})
			}
		}(int64(w))
	}
	wg.Wait()
	total := int64(0)
	for _, v := range s.Snapshot() {
		total += v.(int64)
	}
	if total != initial*accounts {
		t.Fatalf("money not conserved: want %d, got %d", initial*accounts, total)
	}
	if s.Commits.Load() == 0 {
		t.Fatal("no transaction committed")
	}
}

func TestWorkflowCompensatesOnFailure(t *testing.T) {
	s := NewStore(4)
	s.Execute([]string{"stock"}, func(tx *Tx) error { return tx.Set("stock", int64(10)) })
	s.Execute([]string{"balance"}, func(tx *Tx) error { return tx.Set("balance", int64(5)) })

	w := Workflow{
		Name: "checkout",
		Steps: []Step{
			{
				Name: "reserve-stock",
				Keys: []string{"stock"},
				Do: func(tx *Tx) error {
					v, _, _ := tx.Get("stock")
					return tx.Set("stock", v.(int64)-1)
				},
				Compensate: func(tx *Tx) error {
					v, _, _ := tx.Get("stock")
					return tx.Set("stock", v.(int64)+1)
				},
			},
			{
				Name: "charge",
				Keys: []string{"balance"},
				Do: func(tx *Tx) error {
					v, _, _ := tx.Get("balance")
					if v.(int64) < 100 {
						tx.Abort(errors.New("insufficient funds"))
						return nil
					}
					return tx.Set("balance", v.(int64)-100)
				},
			},
		},
	}
	res := w.Execute(s)
	if res.Err == nil {
		t.Fatal("workflow should fail at charge step")
	}
	if res.Completed != 1 || res.Compensated != 1 {
		t.Fatalf("want 1 completed + 1 compensated, got %+v", res)
	}
	v, _ := s.Read("stock")
	if v.(int64) != 10 {
		t.Fatalf("stock not restored by compensation: %v", v)
	}
}

func TestWorkflowFullSuccess(t *testing.T) {
	s := NewStore(2)
	s.Execute([]string{"a"}, func(tx *Tx) error { return tx.Set("a", int64(0)) })
	w := Workflow{Name: "ok", Steps: []Step{
		{Name: "s1", Keys: []string{"a"}, Do: func(tx *Tx) error {
			v, _, _ := tx.Get("a")
			return tx.Set("a", v.(int64)+1)
		}},
		{Name: "s2", Keys: []string{"a"}, Do: func(tx *Tx) error {
			v, _, _ := tx.Get("a")
			return tx.Set("a", v.(int64)+10)
		}},
	}}
	res := w.Execute(s)
	if res.Err != nil || res.Completed != 2 {
		t.Fatalf("workflow failed: %+v", res)
	}
	v, _ := s.Read("a")
	if v.(int64) != 11 {
		t.Fatalf("workflow result wrong: %v", v)
	}
}

func TestTxnOperatorInPipeline(t *testing.T) {
	// Account debits flow through a transactional operator; events that
	// would overdraw abort and emit nothing.
	store := NewStore(4)
	for i := 0; i < 3; i++ {
		k := fmt.Sprintf("acct%d", i)
		store.Execute([]string{k}, func(tx *Tx) error { return tx.Set(k, int64(100)) })
	}

	var events []core.Event
	for i := 0; i < 30; i++ {
		events = append(events, core.Event{
			Key:       fmt.Sprintf("acct%d", i%3),
			Timestamp: int64(i),
			Value:     int64(15), // 10 debits of 15 per account; only 6 fit in 100
		})
	}

	sink := core.NewCollectSink()
	b := core.NewBuilder(core.Config{Name: "txn-pipe"})
	s := b.Source("src", core.NewSliceSourceFactory(events))
	Operator(s, "debit", store, func(e core.Event) ([]string, func(tx *Tx) ([]core.Event, error)) {
		acct := e.Key
		amt := e.Value.(int64)
		return []string{acct}, func(tx *Tx) ([]core.Event, error) {
			v, _, _ := tx.Get(acct)
			bal := v.(int64)
			if bal < amt {
				return nil, errors.New("overdraft")
			}
			if err := tx.Set(acct, bal-amt); err != nil {
				return nil, err
			}
			return []core.Event{{Key: acct, Timestamp: e.Timestamp, Value: bal - amt}}, nil
		}
	}).Sink("out", sink.Factory())
	j, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := j.Run(ctx); err != nil {
		t.Fatal(err)
	}

	// Each account: floor(100/15) = 6 successful debits.
	if sink.Len() != 18 {
		t.Fatalf("want 18 committed debits, got %d", sink.Len())
	}
	for i := 0; i < 3; i++ {
		v, _ := store.Read(fmt.Sprintf("acct%d", i))
		if v.(int64) != 10 {
			t.Fatalf("acct%d final balance: want 10, got %v", i, v)
		}
	}
	if store.Aborts.Load() != 12 {
		t.Fatalf("want 12 aborted overdrafts, got %d", store.Aborts.Load())
	}
}
