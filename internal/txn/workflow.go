package txn

import (
	"fmt"
)

// Step is one unit of a transaction workflow: a forward action and its
// compensation. Each runs as its own store transaction over the declared
// keys (saga-style; the paper's "transaction workflows that involve multiple
// components and ... handling transaction abort cases and rollback actions
// in an automated manner").
type Step struct {
	Name string
	Keys []string
	Do   func(tx *Tx) error
	// Compensate undoes a completed Do when a later step aborts. Nil means
	// the step needs no compensation.
	Compensate func(tx *Tx) error
}

// Workflow is an ordered list of steps.
type Workflow struct {
	Name  string
	Steps []Step
}

// WorkflowResult reports how a workflow execution ended.
type WorkflowResult struct {
	// Completed counts steps whose Do committed.
	Completed int
	// Compensated counts compensations run after a failure.
	Compensated int
	// Err is nil on full success, otherwise the causal failure.
	Err error
}

// Execute runs the workflow against the store: steps run in order, each as a
// serializable transaction; if step k fails, compensations for steps
// k-1 .. 0 run in reverse order and the workflow reports failure.
func (w Workflow) Execute(s *Store) WorkflowResult {
	var res WorkflowResult
	for i, st := range w.Steps {
		if err := s.Execute(st.Keys, st.Do); err != nil {
			res.Err = fmt.Errorf("txn: workflow %q step %q: %w", w.Name, st.Name, err)
			// Roll back in reverse.
			for j := i - 1; j >= 0; j-- {
				c := w.Steps[j]
				if c.Compensate == nil {
					continue
				}
				if cerr := s.Execute(c.Keys, c.Compensate); cerr != nil {
					res.Err = fmt.Errorf("%w; compensation %q also failed: %v", res.Err, c.Name, cerr)
					return res
				}
				res.Compensated++
			}
			return res
		}
		res.Completed++
	}
	return res
}
