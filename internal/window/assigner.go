// Package window implements windowing over event-time streams (§2.1/§2.2):
// tumbling, sliding, session and count window assigners, an engine operator
// with allowed lateness, and the sliding-window aggregation algorithms the
// survey highlights — naive re-evaluation, pane-based partial aggregation
// ("No pane, no gain", Li et al. SIGMOD Record 2005) and a two-stacks
// incremental aggregator that handles non-invertible functions — plus a
// batch-vectorized kernel standing in for the hardware-accelerated operators
// of §4.2.
package window

import "fmt"

// Window is a half-open event-time interval [Start, End).
type Window struct {
	Start int64
	End   int64
}

// String renders the window for debugging and map keys.
func (w Window) String() string { return fmt.Sprintf("[%d,%d)", w.Start, w.End) }

// Contains reports whether ts falls inside the window.
func (w Window) Contains(ts int64) bool { return ts >= w.Start && ts < w.End }

// Intersects reports whether two windows overlap.
func (w Window) Intersects(o Window) bool { return w.Start < o.End && o.Start < w.End }

// Cover returns the smallest window containing both (used by session merge).
func (w Window) Cover(o Window) Window {
	s, e := w.Start, w.End
	if o.Start < s {
		s = o.Start
	}
	if o.End > e {
		e = o.End
	}
	return Window{Start: s, End: e}
}

// Assigner maps an element timestamp to the windows it belongs to.
type Assigner interface {
	// Assign returns the windows for an element at ts.
	Assign(ts int64) []Window
	// IsSession reports whether windows must be merged when they overlap.
	IsSession() bool
}

// PointAssigner is an optional Assigner refinement for assigners that map a
// timestamp to exactly one window. The operator uses it to skip the []Window
// slice allocation Assign pays on every record.
type PointAssigner interface {
	// AssignPoint returns the single window containing ts.
	AssignPoint(ts int64) Window
}

// FixedEnd is an optional Assigner refinement for assigners whose windows are
// uniquely determined by their end timestamp. The operator uses it to fire
// timers with a direct state lookup instead of scanning every open window of
// the key — the open set grows with watermark lag, so under deep buffering
// the scan is the windowing hot path. Session assigners cannot implement it:
// merging moves window ends.
type FixedEnd interface {
	// WindowEnding returns the window ending exactly at end, if any.
	WindowEnding(end int64) (Window, bool)
}

// TumblingAssigner produces fixed, non-overlapping windows of a given size.
type TumblingAssigner struct {
	Size int64
}

// NewTumbling returns a tumbling assigner; size must be positive.
func NewTumbling(size int64) TumblingAssigner {
	if size <= 0 {
		panic("window: tumbling size must be positive")
	}
	return TumblingAssigner{Size: size}
}

// Assign implements Assigner.
func (a TumblingAssigner) Assign(ts int64) []Window {
	return []Window{a.AssignPoint(ts)}
}

// AssignPoint implements PointAssigner.
func (a TumblingAssigner) AssignPoint(ts int64) Window {
	start := floorDiv(ts, a.Size) * a.Size
	return Window{Start: start, End: start + a.Size}
}

// IsSession implements Assigner.
func (TumblingAssigner) IsSession() bool { return false }

// WindowEnding implements FixedEnd: a tumbling window is fully determined by
// its end timestamp.
func (a TumblingAssigner) WindowEnding(end int64) (Window, bool) {
	return Window{Start: end - a.Size, End: end}, true
}

// SlidingAssigner produces overlapping windows of a given size every slide.
type SlidingAssigner struct {
	Size  int64
	Slide int64
}

// NewSliding returns a sliding assigner; both parameters must be positive
// and slide must not exceed size.
func NewSliding(size, slide int64) SlidingAssigner {
	if size <= 0 || slide <= 0 || slide > size {
		panic("window: invalid sliding parameters")
	}
	return SlidingAssigner{Size: size, Slide: slide}
}

// Assign implements Assigner: an element belongs to size/slide windows.
func (a SlidingAssigner) Assign(ts int64) []Window {
	last := floorDiv(ts, a.Slide) * a.Slide
	var out []Window
	for start := last; start > ts-a.Size; start -= a.Slide {
		out = append(out, Window{Start: start, End: start + a.Size})
	}
	return out
}

// IsSession implements Assigner.
func (SlidingAssigner) IsSession() bool { return false }

// WindowEnding implements FixedEnd: sliding windows overlap, but all share
// one size, so the end timestamp still pins down a single window.
func (a SlidingAssigner) WindowEnding(end int64) (Window, bool) {
	return Window{Start: end - a.Size, End: end}, true
}

// SessionAssigner produces per-element windows [ts, ts+gap) that are merged
// with any overlapping window of the same key by the operator.
type SessionAssigner struct {
	Gap int64
}

// NewSession returns a session assigner; gap must be positive.
func NewSession(gap int64) SessionAssigner {
	if gap <= 0 {
		panic("window: session gap must be positive")
	}
	return SessionAssigner{Gap: gap}
}

// Assign implements Assigner.
func (a SessionAssigner) Assign(ts int64) []Window {
	return []Window{a.AssignPoint(ts)}
}

// AssignPoint implements PointAssigner.
func (a SessionAssigner) AssignPoint(ts int64) Window {
	return Window{Start: ts, End: ts + a.Gap}
}

// IsSession implements Assigner.
func (SessionAssigner) IsSession() bool { return true }

// GlobalAssigner puts every element into one all-encompassing window; results
// only fire at end of stream (or via count triggers).
type GlobalAssigner struct{}

// Assign implements Assigner.
func (GlobalAssigner) Assign(int64) []Window {
	return []Window{{Start: minInt64, End: maxInt64}}
}

// AssignPoint implements PointAssigner.
func (GlobalAssigner) AssignPoint(int64) Window {
	return Window{Start: minInt64, End: maxInt64}
}

// IsSession implements Assigner.
func (GlobalAssigner) IsSession() bool { return false }

// WindowEnding implements FixedEnd: only the single all-encompassing window
// ever fires, at the final watermark.
func (GlobalAssigner) WindowEnding(end int64) (Window, bool) {
	if end != maxInt64 {
		return Window{}, false
	}
	return Window{Start: minInt64, End: maxInt64}, true
}

const (
	minInt64 = -1 << 63
	maxInt64 = 1<<63 - 1
)

// floorDiv divides rounding toward negative infinity (correct window
// alignment for negative timestamps).
func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}
