package window

import (
	"repro/internal/core"
	"repro/internal/state"
)

// Evictor removes elements from a window's buffer before it fires — the
// third member of the assigner/trigger/evictor trio of 1st/2nd-generation
// window semantics (e.g. "keep only the last N elements of the window").
type Evictor interface {
	// Evict returns the elements that remain, preserving order.
	Evict(elements []core.Event) []core.Event
}

// CountEvictor keeps the most recent N elements of the window.
type CountEvictor struct {
	N int
}

// Evict implements Evictor.
func (e CountEvictor) Evict(elements []core.Event) []core.Event {
	if e.N <= 0 || len(elements) <= e.N {
		return elements
	}
	return elements[len(elements)-e.N:]
}

// DeltaEvictor drops elements whose value (per extract) differs from the
// newest element's value by more than Threshold — the classic delta-based
// evictor.
type DeltaEvictor struct {
	Threshold float64
	Extract   func(core.Event) float64
}

// Evict implements Evictor.
func (e DeltaEvictor) Evict(elements []core.Event) []core.Event {
	if len(elements) == 0 || e.Extract == nil {
		return elements
	}
	newest := e.Extract(elements[len(elements)-1])
	kept := elements[:0:0]
	for _, el := range elements {
		d := e.Extract(el) - newest
		if d < 0 {
			d = -d
		}
		if d <= e.Threshold {
			kept = append(kept, el)
		}
	}
	return kept
}

func init() {
	state.RegisterType([]core.Event{})
}

// ApplyBuffered attaches a buffering window operator: unlike Apply (which
// folds incrementally), it retains the window's raw elements so an Evictor
// can inspect them before firing. fire receives the (evicted) contents in
// arrival order.
func ApplyBuffered(s *core.Stream, name string, a Assigner, evictor Evictor,
	fire func(key string, w Window, elements []core.Event, emit func(core.Event))) *core.Stream {
	fac := func() core.Operator {
		return &bufferedOperator{assigner: a, evictor: evictor, fire: fire}
	}
	return s.Process(name, fac)
}

type bufferedOperator struct {
	core.BaseOperator
	assigner Assigner
	evictor  Evictor
	fire     func(key string, w Window, elements []core.Event, emit func(core.Event))
}

const bufState = "winbuf"

func (o *bufferedOperator) ProcessElement(e core.Event, ctx core.Context) error {
	wm := ctx.CurrentWatermark()
	for _, w := range o.assigner.Assign(e.Timestamp) {
		if w.End != maxInt64 && w.End <= wm {
			continue // late: the buffered operator has no lateness allowance
		}
		st := ctx.State().Map(bufState)
		k := winKey(w)
		var buf []core.Event
		if raw, ok := st.Get(k); ok {
			buf = raw.([]core.Event)
		} else {
			ctx.RegisterEventTimeTimer(w.End)
		}
		st.Put(k, append(buf, e))
	}
	return nil
}

func (o *bufferedOperator) OnTimer(ts int64, ctx core.Context) error {
	st := ctx.State().Map(bufState)
	for _, k := range st.Keys() {
		w, ok := parseWinKey(k)
		if !ok || w.End != ts {
			continue
		}
		raw, ok := st.Get(k)
		if !ok {
			continue
		}
		buf := raw.([]core.Event)
		if o.evictor != nil {
			buf = o.evictor.Evict(buf)
		}
		o.fire(ctx.Key(), w, buf, ctx.Emit)
		st.Remove(k)
	}
	return nil
}
