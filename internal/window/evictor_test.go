package window

import (
	"context"
	"testing"
	"time"

	"repro/internal/core"
)

func TestCountEvictor(t *testing.T) {
	els := []core.Event{{Timestamp: 1}, {Timestamp: 2}, {Timestamp: 3}}
	got := CountEvictor{N: 2}.Evict(els)
	if len(got) != 2 || got[0].Timestamp != 2 {
		t.Fatalf("count evictor wrong: %v", got)
	}
	if len(CountEvictor{N: 0}.Evict(els)) != 3 {
		t.Fatal("N=0 must keep everything")
	}
	if len(CountEvictor{N: 10}.Evict(els)) != 3 {
		t.Fatal("N>len must keep everything")
	}
}

func TestDeltaEvictor(t *testing.T) {
	els := []core.Event{
		{Value: 1.0}, {Value: 9.5}, {Value: 10.5}, {Value: 10.0},
	}
	got := DeltaEvictor{Threshold: 1.0, Extract: func(e core.Event) float64 { return e.Value.(float64) }}.Evict(els)
	if len(got) != 3 {
		t.Fatalf("delta evictor: want 3 kept (within 1.0 of newest=10.0), got %d", len(got))
	}
}

func TestBufferedWindowWithEvictorInEngine(t *testing.T) {
	// Tumbling 100ms windows of 10 events each; the evictor keeps the last
	// 3, so each firing sees exactly 3 elements, in order.
	var events []core.Event
	for i := 0; i < 50; i++ {
		events = append(events, core.Event{Key: "k", Timestamp: int64(i * 10), Value: float64(i)})
	}
	sink := core.NewCollectSink()
	b := core.NewBuilder(core.Config{Name: "buffered", WatermarkInterval: 1})
	s := b.Source("src", core.NewSliceSourceFactory(events), core.WithBoundedDisorder(0)).
		KeyBy(func(e core.Event) string { return e.Key })
	ApplyBuffered(s, "buf", NewTumbling(100), CountEvictor{N: 3},
		func(key string, w Window, els []core.Event, emit func(core.Event)) {
			emit(core.Event{Key: key, Timestamp: w.End - 1, Value: int64(len(els))})
		}).Sink("out", sink.Factory())
	j, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := j.Run(ctx); err != nil {
		t.Fatal(err)
	}
	if sink.Len() != 5 {
		t.Fatalf("want 5 windows, got %d", sink.Len())
	}
	for _, e := range sink.Events() {
		if e.Value.(int64) != 3 {
			t.Fatalf("evictor should leave 3 elements, got %v", e.Value)
		}
	}
}
