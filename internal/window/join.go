package window

import (
	"repro/internal/core"
	"repro/internal/state"
)

// sideEvent tags a joined element with its input side.
type sideEvent struct {
	Left bool
	Orig core.Event
}

// joinEntry is one buffered element awaiting matches.
type joinEntry struct {
	TS    int64
	Key   string
	Value any
}

func init() {
	state.RegisterType(sideEvent{})
	state.RegisterType(joinEntry{})
	state.RegisterType(core.Event{})
}

// IntervalJoin joins two streams on equal keys within an event-time bound:
// a left element at time t matches right elements in [t-bound, t+bound]
// (the streaming equi-join of the classic "windows, aggregates, joins"
// triad). Both sides are buffered in managed keyed state and evicted by
// watermark-driven timers, so the join is checkpointable and restorable
// like any other operator.
//
// fn is invoked once per matched pair and may decline by returning false.
func IntervalJoin(name string, left *core.Stream, leftKey core.KeySelector,
	right *core.Stream, rightKey core.KeySelector, bound int64,
	fn func(l, r core.Event) (core.Event, bool)) *core.Stream {

	tag := func(isLeft bool) func(e core.Event) (core.Event, bool) {
		return func(e core.Event) (core.Event, bool) {
			return core.Event{Timestamp: e.Timestamp, Value: sideEvent{Left: isLeft, Orig: e}}, true
		}
	}
	keyOf := func(e core.Event) string {
		se := e.Value.(sideEvent)
		if se.Left {
			return leftKey(se.Orig)
		}
		return rightKey(se.Orig)
	}
	lt := left.Map(name+"-tagL", tag(true)).KeyBy(keyOf)
	rt := right.Map(name+"-tagR", tag(false)).KeyBy(keyOf)

	fac := func() core.Operator { return &intervalJoinOp{bound: bound, fn: fn} }
	return lt.Union(rt).Process(name, fac, 0)
}

type intervalJoinOp struct {
	core.BaseOperator
	bound int64
	fn    func(l, r core.Event) (core.Event, bool)
}

const (
	leftBuf  = "join-left"
	rightBuf = "join-right"
)

func (o *intervalJoinOp) ProcessElement(e core.Event, ctx core.Context) error {
	se, ok := e.Value.(sideEvent)
	if !ok {
		return nil
	}
	mine, theirs := leftBuf, rightBuf
	if !se.Left {
		mine, theirs = rightBuf, leftBuf
	}
	orig := se.Orig
	orig.Key = ctx.Key()

	// Probe the opposite buffer.
	for _, raw := range ctx.State().List(theirs).Get() {
		other := raw.(joinEntry)
		if other.TS < orig.Timestamp-o.bound || other.TS > orig.Timestamp+o.bound {
			continue
		}
		otherEv := core.Event{Key: other.Key, Timestamp: other.TS, Value: other.Value}
		var out core.Event
		var emit bool
		if se.Left {
			out, emit = o.fn(orig, otherEv)
		} else {
			out, emit = o.fn(otherEv, orig)
		}
		if emit {
			ctx.Emit(out)
		}
	}

	// Buffer self and schedule eviction once no future element can match:
	// the watermark must pass ts+bound.
	ctx.State().List(mine).Append(joinEntry{TS: orig.Timestamp, Key: orig.Key, Value: orig.Value})
	ctx.RegisterEventTimeTimer(orig.Timestamp + o.bound + 1)
	return nil
}

// OnTimer evicts buffered entries that can no longer join.
func (o *intervalJoinOp) OnTimer(ts int64, ctx core.Context) error {
	wm := ctx.CurrentWatermark()
	for _, buf := range []string{leftBuf, rightBuf} {
		st := ctx.State().List(buf)
		entries := st.Get()
		kept := make([]any, 0, len(entries))
		for _, raw := range entries {
			if raw.(joinEntry).TS+o.bound >= wm {
				kept = append(kept, raw)
			}
		}
		if len(kept) == len(entries) {
			continue
		}
		st.Clear()
		for _, k := range kept {
			st.Append(k)
		}
	}
	return nil
}
