package window

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
)

type orderVal struct {
	ID     string
	Amount float64
}

type paymentVal struct {
	OrderID string
	OK      bool
}

func TestIntervalJoinMatchesWithinBound(t *testing.T) {
	orders := []core.Event{
		{Timestamp: 100, Value: orderVal{ID: "o1", Amount: 10}},
		{Timestamp: 200, Value: orderVal{ID: "o2", Amount: 20}},
		{Timestamp: 300, Value: orderVal{ID: "o3", Amount: 30}},
	}
	// Timestamp-ordered, as the 0-disorder watermark strategy demands.
	payments := []core.Event{
		{Timestamp: 150, Value: paymentVal{OrderID: "o1", OK: true}}, // within 100 of o1
		{Timestamp: 320, Value: paymentVal{OrderID: "o3", OK: true}}, // within bound
		{Timestamp: 340, Value: paymentVal{OrderID: "zz", OK: true}}, // unknown order
		{Timestamp: 450, Value: paymentVal{OrderID: "o2", OK: true}}, // 250 after o2: too late
	}

	sink := core.NewCollectSink()
	b := core.NewBuilder(core.Config{Name: "join", WatermarkInterval: 1})
	lo := b.Source("orders", core.NewSliceSourceFactory(orders), core.WithBoundedDisorder(0))
	rp := b.Source("payments", core.NewSliceSourceFactory(payments), core.WithBoundedDisorder(0))
	IntervalJoin("pay-join", lo,
		func(e core.Event) string { return e.Value.(orderVal).ID },
		rp,
		func(e core.Event) string { return e.Value.(paymentVal).OrderID },
		100,
		func(l, r core.Event) (core.Event, bool) {
			return core.Event{
				Key:       l.Value.(orderVal).ID,
				Timestamp: r.Timestamp,
				Value:     l.Value.(orderVal).Amount,
			}, true
		}).Sink("out", sink.Factory())
	j, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := j.Run(ctx); err != nil {
		t.Fatal(err)
	}

	got := map[string]bool{}
	for _, e := range sink.Events() {
		got[e.Key] = true
	}
	if !got["o1"] || !got["o3"] {
		t.Fatalf("expected joins for o1 and o3, got %v", got)
	}
	if got["o2"] {
		t.Fatal("o2 joined outside the interval bound")
	}
	if sink.Len() != 2 {
		t.Fatalf("want exactly 2 join results, got %d", sink.Len())
	}
}

func TestIntervalJoinSymmetricArrivalOrder(t *testing.T) {
	// The right element arriving first must still join when the left shows
	// up within the bound (both sides buffer).
	left := []core.Event{{Timestamp: 500, Value: orderVal{ID: "x", Amount: 1}}}
	right := []core.Event{{Timestamp: 450, Value: paymentVal{OrderID: "x", OK: true}}}
	sink := core.NewCollectSink()
	b := core.NewBuilder(core.Config{Name: "join-sym", WatermarkInterval: 1})
	lo := b.Source("l", core.NewSliceSourceFactory(left), core.WithBoundedDisorder(0))
	rp := b.Source("r", core.NewSliceSourceFactory(right), core.WithBoundedDisorder(0))
	IntervalJoin("j", lo,
		func(e core.Event) string { return e.Value.(orderVal).ID },
		rp,
		func(e core.Event) string { return e.Value.(paymentVal).OrderID },
		100,
		func(l, r core.Event) (core.Event, bool) {
			return core.Event{Key: "joined", Timestamp: l.Timestamp}, true
		}).Sink("out", sink.Factory())
	j, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := j.Run(ctx); err != nil {
		t.Fatal(err)
	}
	if sink.Len() != 1 {
		t.Fatalf("symmetric join failed: %d results", sink.Len())
	}
}

func TestIntervalJoinManyToMany(t *testing.T) {
	// Two left and two right elements of the same key, all within bound:
	// 4 output pairs.
	var left, right []core.Event
	for i := 0; i < 2; i++ {
		left = append(left, core.Event{Timestamp: int64(100 + i), Value: orderVal{ID: "k"}})
		right = append(right, core.Event{Timestamp: int64(110 + i), Value: paymentVal{OrderID: "k"}})
	}
	sink := core.NewCollectSink()
	b := core.NewBuilder(core.Config{Name: "join-mm", WatermarkInterval: 1})
	lo := b.Source("l", core.NewSliceSourceFactory(left), core.WithBoundedDisorder(0))
	rp := b.Source("r", core.NewSliceSourceFactory(right), core.WithBoundedDisorder(0))
	IntervalJoin("j", lo,
		func(e core.Event) string { return e.Value.(orderVal).ID },
		rp,
		func(e core.Event) string { return e.Value.(paymentVal).OrderID },
		1000,
		func(l, r core.Event) (core.Event, bool) {
			return core.Event{Key: fmt.Sprintf("%d-%d", l.Timestamp, r.Timestamp)}, true
		}).Sink("out", sink.Factory())
	j, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := j.Run(ctx); err != nil {
		t.Fatal(err)
	}
	if sink.Len() != 4 {
		t.Fatalf("many-to-many: want 4 pairs, got %d", sink.Len())
	}
	// No duplicate pairs.
	seen := map[string]bool{}
	for _, e := range sink.Events() {
		if seen[e.Key] {
			t.Fatalf("duplicate join pair %s", e.Key)
		}
		seen[e.Key] = true
	}
}
