package window

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/state"
)

// Aggregate defines how window contents are accumulated and emitted.
type Aggregate struct {
	// Create returns an empty accumulator.
	Create func() any
	// Add folds one element into the accumulator.
	Add func(acc any, e core.Event) any
	// Merge combines two accumulators; required for session windows.
	Merge func(a, b any) any
	// Emit produces the result event for a closed (or late-updated) window.
	Emit func(key string, w Window, acc any) core.Event
	// AddBatch, when non-nil, folds a same-key, same-window segment of a
	// columnar batch (indices [start, end) of cols) into the accumulator in
	// one call — the whole-batch fast path used under Config.ColumnarExec.
	// It must be equivalent to folding the segment element-by-element with
	// Add; for float sums "equivalent" is up to the rounding re-association
	// of the unrolled kernel (exact for counts, min and max).
	AddBatch func(acc any, cols *core.Columns, start, end int) any
}

// segScratch pools the dense extraction buffer AddBatch feeds the unrolled
// kernels. Aggregate closures are shared across parallel operator instances,
// so the scratch cannot be captured per closure.
var segScratch = sync.Pool{New: func() any { s := make([]float64, 0, 256); return &s }}

// FloatAggregate builds an Aggregate over float64 values using an AggFn and
// a value extractor. The built-in Sum, Min and Max functions get an AddBatch
// backed by the E10 unrolled kernels (sumKernel and friends), so the
// columnar path folds whole same-window segments branch-free.
func FloatAggregate(fn AggFn, get func(core.Event) float64) Aggregate {
	var kernel func([]float64) float64
	switch fn.Name {
	case "sum":
		kernel = sumKernel
	case "min":
		kernel = minKernel
	case "max":
		kernel = maxKernel
	}
	return Aggregate{
		Create: func() any { return fn.Identity },
		Add:    func(acc any, e core.Event) any { return fn.Combine(acc.(float64), get(e)) },
		Merge:  func(a, b any) any { return fn.Combine(a.(float64), b.(float64)) },
		Emit: func(key string, w Window, acc any) core.Event {
			return core.Event{Key: key, Timestamp: w.End - 1, Value: acc}
		},
		AddBatch: func(acc any, cols *core.Columns, start, end int) any {
			a := acc.(float64)
			// Short segments fold sequentially: below the unroll width the
			// kernel cannot win, and the sequential fold is bit-identical to
			// the per-record path.
			if kernel == nil || end-start < 8 {
				for i := start; i < end; i++ {
					a = fn.Combine(a, get(cols.Events[i]))
				}
				return a
			}
			sp := segScratch.Get().(*[]float64)
			seg := (*sp)[:0]
			for i := start; i < end; i++ {
				seg = append(seg, get(cols.Events[i]))
			}
			a = fn.Combine(a, kernel(seg))
			*sp = seg[:0]
			segScratch.Put(sp)
			return a
		},
	}
}

// ValueAggregate is FloatAggregate for streams whose Value already is the
// float64 being aggregated. Its batch path feeds the columnar dense value
// column straight into the unrolled kernels — no per-element extractor calls
// at all, the layout §4.2's accelerator results assume.
func ValueAggregate(fn AggFn) Aggregate {
	get := func(e core.Event) float64 { return e.Value.(float64) }
	agg := FloatAggregate(fn, get)
	var kernel func([]float64) float64
	switch fn.Name {
	case "sum":
		kernel = sumKernel
	case "min":
		kernel = minKernel
	case "max":
		kernel = maxKernel
	default:
		return agg
	}
	agg.AddBatch = func(acc any, cols *core.Columns, start, end int) any {
		a := acc.(float64)
		if end-start < 8 {
			for i := start; i < end; i++ {
				a = fn.Combine(a, cols.Events[i].Value.(float64))
			}
			return a
		}
		if vals := cols.Vals(); vals != nil {
			return fn.Combine(a, kernel(vals[start:end]))
		}
		for i := start; i < end; i++ {
			a = fn.Combine(a, cols.Events[i].Value.(float64))
		}
		return a
	}
	return agg
}

// CountAggregate counts elements per window.
func CountAggregate() Aggregate {
	return Aggregate{
		Create: func() any { return int64(0) },
		Add:    func(acc any, _ core.Event) any { return acc.(int64) + 1 },
		Merge:  func(a, b any) any { return a.(int64) + b.(int64) },
		Emit: func(key string, w Window, acc any) core.Event {
			return core.Event{Key: key, Timestamp: w.End - 1, Value: acc}
		},
		AddBatch: func(acc any, _ *core.Columns, start, end int) any {
			return acc.(int64) + int64(end-start)
		},
	}
}

// Option customises the window operator.
type Option func(*operator)

// WithAllowedLateness keeps window state for `late` ms past the watermark,
// re-emitting updated results when late elements arrive (§2.2's second
// strategy: ingest disorder and adjust computations in face of late data).
func WithAllowedLateness(late int64) Option {
	return func(o *operator) { o.lateness = late }
}

// WithLateCounter records dropped-late elements into the given counter.
func WithLateCounter(c *metrics.Counter) Option {
	return func(o *operator) { o.lateDrops = c }
}

// Apply attaches a window operator to a keyed stream.
func Apply(s *core.Stream, name string, a Assigner, agg Aggregate, opts ...Option) *core.Stream {
	fac := func() core.Operator {
		op := &operator{assigner: a, agg: agg}
		op.fixedEnd, _ = a.(FixedEnd)
		op.point, _ = a.(PointAssigner)
		for _, o := range opts {
			o(op)
		}
		return op
	}
	return s.Process(name, fac)
}

// operator is the engine window operator: accumulators live in managed keyed
// state (namespaced by window), results fire on event-time timers, and late
// data is handled per the allowed-lateness policy — so window state is
// checkpointed, restored and rescaled like any other managed state.
type operator struct {
	core.BaseOperator
	assigner  Assigner
	agg       Aggregate
	fixedEnd  FixedEnd      // non-nil when the window is derivable from a timer ts
	point     PointAssigner // non-nil when each ts maps to exactly one window
	lateness  int64
	lateDrops *metrics.Counter
	st        state.MapState // window state handle, resolved once per instance
	// memoWin/memoKey memoize the last stateKey result for the whole-batch
	// path; see cachedStateKey.
	memoWin Window
	memoKey string
}

// state returns the window state handle, resolving it on first use. The
// backend is fixed for the operator instance's lifetime (restores mutate it
// in place), so the handle can be kept across records.
func (o *operator) state(ctx core.Context) state.MapState {
	if o.st == nil {
		o.st = ctx.State().Map(winState)
	}
	return o.st
}

const winState = "windows"

func winKey(w Window) string {
	// Built in one append pass: this runs per record, and the two-FormatInt
	// + concat form costs three allocations against one here.
	var buf [42]byte
	b := strconv.AppendInt(buf[:0], w.Start, 10)
	b = append(b, '|')
	b = strconv.AppendInt(b, w.End, 10)
	return string(b)
}

// endKey is the state key used by FixedEnd assigners: the start is derivable
// from the end, so the key is just the end timestamp — cheaper to build and
// hash than the full "start|end" form, which only merging sessions (and
// custom assigners, whose OnTimer scan must parse keys back) need.
func endKey(end int64) string {
	var buf [20]byte
	return string(strconv.AppendInt(buf[:0], end, 10))
}

// stateKey picks the key encoding matching the operator's OnTimer strategy.
func (o *operator) stateKey(w Window) string {
	if o.fixedEnd != nil {
		return endKey(w.End)
	}
	return winKey(w)
}

// cachedStateKey memoizes the last formatted state key. The whole-batch path
// commonly revisits one window across many key runs (batches span far less
// event time than a window), so the timestamp formatting is paid once per
// window change instead of once per segment. stateKey is a pure function of
// the window, so the memo can safely persist across batches.
func (o *operator) cachedStateKey(w Window) string {
	if o.memoKey == "" || w != o.memoWin {
		o.memoWin, o.memoKey = w, o.stateKey(w)
	}
	return o.memoKey
}

func parseWinKey(s string) (Window, bool) {
	i := strings.IndexByte(s, '|')
	if i < 0 {
		return Window{}, false
	}
	start, err1 := strconv.ParseInt(s[:i], 10, 64)
	end, err2 := strconv.ParseInt(s[i+1:], 10, 64)
	if err1 != nil || err2 != nil {
		return Window{}, false
	}
	return Window{Start: start, End: end}, true
}

func (o *operator) ProcessElement(e core.Event, ctx core.Context) error {
	wm := ctx.CurrentWatermark()
	if o.point != nil {
		// Single-window assigners skip Assign's per-record slice allocation.
		return o.addToWindow(o.point.AssignPoint(e.Timestamp), e, ctx, wm)
	}
	for _, w := range o.assigner.Assign(e.Timestamp) {
		if err := o.addToWindow(w, e, ctx, wm); err != nil {
			return err
		}
	}
	return nil
}

// ProcessBatch implements core.BatchOperator: the whole-batch columnar path.
// The exchange flushes open batches before every control message, so the
// watermark — and with it every lateness decision — is constant across the
// batch. Records are walked in arrival order, grouped into runs of equal
// keys and, within a run, into segments assigned to the same window, so key
// scoping, state lookups, timer registration and the aggregate fold are paid
// once per segment instead of once per record. Emission order, state
// contents and timer sets are identical to the per-record path.
func (o *operator) ProcessBatch(cols *core.Columns, ctx core.BatchContext) error {
	n := len(cols.Events)
	fast := o.point != nil && o.agg.AddBatch != nil && !o.assigner.IsSession()
	for i := 0; i < n; {
		key := cols.Events[i].Key
		j := i + 1
		for j < n && cols.Events[j].Key == key {
			j++
		}
		ctx.SetKey(key)
		ctx.State() // re-scope the backend for the cached o.st handle
		if fast {
			if err := o.addRun(cols, i, j, ctx); err != nil {
				return err
			}
		} else {
			for r := i; r < j; r++ {
				if err := o.ProcessElement(cols.Events[r], ctx); err != nil {
					return err
				}
			}
		}
		i = j
	}
	return nil
}

// addRun folds one same-key run [lo, hi) of the batch into its windows,
// segment by segment, where a segment is a maximal stretch of consecutive
// records the point assigner maps to the same window.
func (o *operator) addRun(cols *core.Columns, lo, hi int, ctx core.BatchContext) error {
	wm := ctx.CurrentWatermark()
	st := o.state(ctx)
	for s := lo; s < hi; {
		w := o.point.AssignPoint(cols.Events[s].Timestamp)
		e := s + 1
		for e < hi && o.point.AssignPoint(cols.Events[e].Timestamp) == w {
			e++
		}
		global := w.End == maxInt64
		switch {
		case !global && w.End+o.lateness <= wm:
			// Too late even for the lateness allowance: drop the segment.
			if o.lateDrops != nil {
				o.lateDrops.Add(int64(e - s))
			}
		case !global && w.End <= wm:
			// Late but allowed: the per-record path re-emits the updated
			// result after every element; replay these one by one so the
			// emission stream stays identical.
			for r := s; r < e; r++ {
				if err := o.addToWindow(w, cols.Events[r], ctx, wm); err != nil {
					return err
				}
			}
		default:
			k := o.cachedStateKey(w)
			acc, ok := st.Get(k)
			if !ok {
				acc = o.agg.Create()
				ctx.RegisterEventTimeTimer(w.End)
				if o.lateness > 0 && !global {
					ctx.RegisterEventTimeTimer(w.End + o.lateness)
				}
			}
			st.Put(k, o.agg.AddBatch(acc, cols, s, e))
		}
		s = e
	}
	return nil
}

// addToWindow folds one element into one assigned window.
func (o *operator) addToWindow(w Window, e core.Event, ctx core.Context, wm int64) error {
	// Global windows (End == maxInt64) are never late and fire only on
	// the final watermark; guard against End+lateness overflow.
	global := w.End == maxInt64
	if !global && w.End+o.lateness <= wm {
		// Too late even for the lateness allowance: drop.
		if o.lateDrops != nil {
			o.lateDrops.Inc()
		}
		return nil
	}
	if o.assigner.IsSession() {
		return o.addSession(w, e, ctx)
	}
	st := o.state(ctx)
	k := o.stateKey(w)
	acc, ok := st.Get(k)
	if !ok {
		acc = o.agg.Create()
		ctx.RegisterEventTimeTimer(w.End)
		if o.lateness > 0 && !global {
			ctx.RegisterEventTimeTimer(w.End + o.lateness)
		}
	}
	acc = o.agg.Add(acc, e)
	st.Put(k, acc)
	if !global && w.End <= wm {
		// Late but allowed: re-emit the updated result immediately.
		ctx.Emit(o.agg.Emit(ctx.Key(), w, acc))
	}
	return nil
}

// addSession inserts an element into session state, merging every session
// window of the key that the new element bridges.
func (o *operator) addSession(w Window, e core.Event, ctx core.Context) error {
	if o.agg.Merge == nil {
		return fmt.Errorf("window: session windows require Aggregate.Merge")
	}
	st := o.state(ctx)
	merged := w
	acc := o.agg.Create()
	for _, k := range st.Keys() {
		old, ok := parseWinKey(k)
		if !ok || !merged.Intersects(old) {
			continue
		}
		v, _ := st.Get(k)
		acc = o.agg.Merge(acc, v)
		merged = merged.Cover(old)
		st.Remove(k)
		ctx.DeleteEventTimeTimer(old.End)
	}
	acc = o.agg.Add(acc, e)
	st.Put(winKey(merged), acc)
	ctx.RegisterEventTimeTimer(merged.End)
	return nil
}

// OnTimer fires window results at End and purges state at End+lateness.
func (o *operator) OnTimer(ts int64, ctx core.Context) error {
	st := o.state(ctx)
	if o.fixedEnd != nil {
		// Fixed-size windows: look up the firing window directly instead of
		// scanning the key's whole open set.
		if w, ok := o.fixedEnd.WindowEnding(ts); ok {
			k := endKey(w.End)
			if acc, ok := st.Get(k); ok {
				ctx.Emit(o.agg.Emit(ctx.Key(), w, acc))
				if o.lateness == 0 || w.End == maxInt64 {
					st.Remove(k)
				}
			}
		}
		if o.lateness > 0 {
			if w, ok := o.fixedEnd.WindowEnding(ts - o.lateness); ok && w.End != maxInt64 {
				st.Remove(endKey(w.End))
			}
		}
		return nil
	}
	for _, k := range st.Keys() {
		w, ok := parseWinKey(k)
		if !ok {
			continue
		}
		if w.End == ts {
			acc, ok := st.Get(k)
			if !ok {
				continue
			}
			ctx.Emit(o.agg.Emit(ctx.Key(), w, acc))
			if o.lateness == 0 || w.End == maxInt64 {
				st.Remove(k)
			}
		}
		if o.lateness > 0 && w.End != maxInt64 && w.End+o.lateness == ts {
			st.Remove(k)
		}
	}
	return nil
}

// CountWindow emits an aggregate every n elements per key (count-based
// tumbling window — the non-temporal window type of 1st-gen systems).
func CountWindow(s *core.Stream, name string, n int64, agg Aggregate) *core.Stream {
	fac := func() core.Operator { return &countWindow{n: n, agg: agg} }
	return s.Process(name, fac)
}

type countWindow struct {
	core.BaseOperator
	n   int64
	agg Aggregate
}

func (o *countWindow) ProcessElement(e core.Event, ctx core.Context) error {
	accSt := ctx.State().Value("acc")
	cntSt := ctx.State().Value("cnt")
	startSt := ctx.State().Value("start")
	acc, ok := accSt.Get()
	if !ok {
		acc = o.agg.Create()
	}
	acc = o.agg.Add(acc, e)
	cnt := int64(1)
	if c, ok := cntSt.Get(); ok {
		cnt = c.(int64) + 1
	}
	// The window's true start is the first buffered element's timestamp,
	// kept in state so it survives checkpoint/restore with the buffer.
	start, haveStart := e.Timestamp, false
	if s, ok := startSt.Get(); ok {
		start, haveStart = s.(int64), true
	}
	if cnt >= o.n {
		ctx.Emit(o.agg.Emit(ctx.Key(), Window{Start: start, End: e.Timestamp + 1}, acc))
		accSt.Clear()
		cntSt.Clear()
		startSt.Clear()
		return nil
	}
	accSt.Set(acc)
	cntSt.Set(cnt)
	if !haveStart {
		startSt.Set(start)
	}
	return nil
}
