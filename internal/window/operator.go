package window

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/state"
)

// Aggregate defines how window contents are accumulated and emitted.
type Aggregate struct {
	// Create returns an empty accumulator.
	Create func() any
	// Add folds one element into the accumulator.
	Add func(acc any, e core.Event) any
	// Merge combines two accumulators; required for session windows.
	Merge func(a, b any) any
	// Emit produces the result event for a closed (or late-updated) window.
	Emit func(key string, w Window, acc any) core.Event
}

// FloatAggregate builds an Aggregate over float64 values using an AggFn and
// a value extractor.
func FloatAggregate(fn AggFn, get func(core.Event) float64) Aggregate {
	return Aggregate{
		Create: func() any { return fn.Identity },
		Add:    func(acc any, e core.Event) any { return fn.Combine(acc.(float64), get(e)) },
		Merge:  func(a, b any) any { return fn.Combine(a.(float64), b.(float64)) },
		Emit: func(key string, w Window, acc any) core.Event {
			return core.Event{Key: key, Timestamp: w.End - 1, Value: acc}
		},
	}
}

// CountAggregate counts elements per window.
func CountAggregate() Aggregate {
	return Aggregate{
		Create: func() any { return int64(0) },
		Add:    func(acc any, _ core.Event) any { return acc.(int64) + 1 },
		Merge:  func(a, b any) any { return a.(int64) + b.(int64) },
		Emit: func(key string, w Window, acc any) core.Event {
			return core.Event{Key: key, Timestamp: w.End - 1, Value: acc}
		},
	}
}

// Option customises the window operator.
type Option func(*operator)

// WithAllowedLateness keeps window state for `late` ms past the watermark,
// re-emitting updated results when late elements arrive (§2.2's second
// strategy: ingest disorder and adjust computations in face of late data).
func WithAllowedLateness(late int64) Option {
	return func(o *operator) { o.lateness = late }
}

// WithLateCounter records dropped-late elements into the given counter.
func WithLateCounter(c *metrics.Counter) Option {
	return func(o *operator) { o.lateDrops = c }
}

// Apply attaches a window operator to a keyed stream.
func Apply(s *core.Stream, name string, a Assigner, agg Aggregate, opts ...Option) *core.Stream {
	fac := func() core.Operator {
		op := &operator{assigner: a, agg: agg}
		op.fixedEnd, _ = a.(FixedEnd)
		op.point, _ = a.(PointAssigner)
		for _, o := range opts {
			o(op)
		}
		return op
	}
	return s.Process(name, fac)
}

// operator is the engine window operator: accumulators live in managed keyed
// state (namespaced by window), results fire on event-time timers, and late
// data is handled per the allowed-lateness policy — so window state is
// checkpointed, restored and rescaled like any other managed state.
type operator struct {
	core.BaseOperator
	assigner  Assigner
	agg       Aggregate
	fixedEnd  FixedEnd      // non-nil when the window is derivable from a timer ts
	point     PointAssigner // non-nil when each ts maps to exactly one window
	lateness  int64
	lateDrops *metrics.Counter
	st        state.MapState // window state handle, resolved once per instance
}

// state returns the window state handle, resolving it on first use. The
// backend is fixed for the operator instance's lifetime (restores mutate it
// in place), so the handle can be kept across records.
func (o *operator) state(ctx core.Context) state.MapState {
	if o.st == nil {
		o.st = ctx.State().Map(winState)
	}
	return o.st
}

const winState = "windows"

func winKey(w Window) string {
	// Built in one append pass: this runs per record, and the two-FormatInt
	// + concat form costs three allocations against one here.
	var buf [42]byte
	b := strconv.AppendInt(buf[:0], w.Start, 10)
	b = append(b, '|')
	b = strconv.AppendInt(b, w.End, 10)
	return string(b)
}

// endKey is the state key used by FixedEnd assigners: the start is derivable
// from the end, so the key is just the end timestamp — cheaper to build and
// hash than the full "start|end" form, which only merging sessions (and
// custom assigners, whose OnTimer scan must parse keys back) need.
func endKey(end int64) string {
	var buf [20]byte
	return string(strconv.AppendInt(buf[:0], end, 10))
}

// stateKey picks the key encoding matching the operator's OnTimer strategy.
func (o *operator) stateKey(w Window) string {
	if o.fixedEnd != nil {
		return endKey(w.End)
	}
	return winKey(w)
}

func parseWinKey(s string) (Window, bool) {
	i := strings.IndexByte(s, '|')
	if i < 0 {
		return Window{}, false
	}
	start, err1 := strconv.ParseInt(s[:i], 10, 64)
	end, err2 := strconv.ParseInt(s[i+1:], 10, 64)
	if err1 != nil || err2 != nil {
		return Window{}, false
	}
	return Window{Start: start, End: end}, true
}

func (o *operator) ProcessElement(e core.Event, ctx core.Context) error {
	wm := ctx.CurrentWatermark()
	if o.point != nil {
		// Single-window assigners skip Assign's per-record slice allocation.
		return o.addToWindow(o.point.AssignPoint(e.Timestamp), e, ctx, wm)
	}
	for _, w := range o.assigner.Assign(e.Timestamp) {
		if err := o.addToWindow(w, e, ctx, wm); err != nil {
			return err
		}
	}
	return nil
}

// addToWindow folds one element into one assigned window.
func (o *operator) addToWindow(w Window, e core.Event, ctx core.Context, wm int64) error {
	// Global windows (End == maxInt64) are never late and fire only on
	// the final watermark; guard against End+lateness overflow.
	global := w.End == maxInt64
	if !global && w.End+o.lateness <= wm {
		// Too late even for the lateness allowance: drop.
		if o.lateDrops != nil {
			o.lateDrops.Inc()
		}
		return nil
	}
	if o.assigner.IsSession() {
		return o.addSession(w, e, ctx)
	}
	st := o.state(ctx)
	k := o.stateKey(w)
	acc, ok := st.Get(k)
	if !ok {
		acc = o.agg.Create()
		ctx.RegisterEventTimeTimer(w.End)
		if o.lateness > 0 && !global {
			ctx.RegisterEventTimeTimer(w.End + o.lateness)
		}
	}
	acc = o.agg.Add(acc, e)
	st.Put(k, acc)
	if !global && w.End <= wm {
		// Late but allowed: re-emit the updated result immediately.
		ctx.Emit(o.agg.Emit(ctx.Key(), w, acc))
	}
	return nil
}

// addSession inserts an element into session state, merging every session
// window of the key that the new element bridges.
func (o *operator) addSession(w Window, e core.Event, ctx core.Context) error {
	if o.agg.Merge == nil {
		return fmt.Errorf("window: session windows require Aggregate.Merge")
	}
	st := o.state(ctx)
	merged := w
	acc := o.agg.Create()
	for _, k := range st.Keys() {
		old, ok := parseWinKey(k)
		if !ok || !merged.Intersects(old) {
			continue
		}
		v, _ := st.Get(k)
		acc = o.agg.Merge(acc, v)
		merged = merged.Cover(old)
		st.Remove(k)
		ctx.DeleteEventTimeTimer(old.End)
	}
	acc = o.agg.Add(acc, e)
	st.Put(winKey(merged), acc)
	ctx.RegisterEventTimeTimer(merged.End)
	return nil
}

// OnTimer fires window results at End and purges state at End+lateness.
func (o *operator) OnTimer(ts int64, ctx core.Context) error {
	st := o.state(ctx)
	if o.fixedEnd != nil {
		// Fixed-size windows: look up the firing window directly instead of
		// scanning the key's whole open set.
		if w, ok := o.fixedEnd.WindowEnding(ts); ok {
			k := endKey(w.End)
			if acc, ok := st.Get(k); ok {
				ctx.Emit(o.agg.Emit(ctx.Key(), w, acc))
				if o.lateness == 0 || w.End == maxInt64 {
					st.Remove(k)
				}
			}
		}
		if o.lateness > 0 {
			if w, ok := o.fixedEnd.WindowEnding(ts - o.lateness); ok && w.End != maxInt64 {
				st.Remove(endKey(w.End))
			}
		}
		return nil
	}
	for _, k := range st.Keys() {
		w, ok := parseWinKey(k)
		if !ok {
			continue
		}
		if w.End == ts {
			acc, ok := st.Get(k)
			if !ok {
				continue
			}
			ctx.Emit(o.agg.Emit(ctx.Key(), w, acc))
			if o.lateness == 0 || w.End == maxInt64 {
				st.Remove(k)
			}
		}
		if o.lateness > 0 && w.End != maxInt64 && w.End+o.lateness == ts {
			st.Remove(k)
		}
	}
	return nil
}

// CountWindow emits an aggregate every n elements per key (count-based
// tumbling window — the non-temporal window type of 1st-gen systems).
func CountWindow(s *core.Stream, name string, n int64, agg Aggregate) *core.Stream {
	fac := func() core.Operator { return &countWindow{n: n, agg: agg} }
	return s.Process(name, fac)
}

type countWindow struct {
	core.BaseOperator
	n   int64
	agg Aggregate
}

func (o *countWindow) ProcessElement(e core.Event, ctx core.Context) error {
	accSt := ctx.State().Value("acc")
	cntSt := ctx.State().Value("cnt")
	acc, ok := accSt.Get()
	if !ok {
		acc = o.agg.Create()
	}
	acc = o.agg.Add(acc, e)
	cnt := int64(1)
	if c, ok := cntSt.Get(); ok {
		cnt = c.(int64) + 1
	}
	if cnt >= o.n {
		ctx.Emit(o.agg.Emit(ctx.Key(), Window{Start: 0, End: e.Timestamp + 1}, acc))
		accSt.Clear()
		cntSt.Clear()
		return nil
	}
	accSt.Set(acc)
	cntSt.Set(cnt)
	return nil
}
