package window

import "math"

// This file implements the three sliding-window aggregation strategies that
// experiment E3 compares, reproducing the shape of the "No pane, no gain"
// result: for a window of range R and slide S over a stream, per-result cost
// is O(R) for naive re-evaluation, O(R/gcd(R,S)) for panes, and O(1)
// amortized for the two-stacks incremental algorithm (which also supports
// non-invertible functions like min/max).

// AggFn is an associative aggregation over float64 with an identity element.
type AggFn struct {
	Name     string
	Identity float64
	Combine  func(a, b float64) float64
}

// Sum aggregates by addition.
var Sum = AggFn{Name: "sum", Identity: 0, Combine: func(a, b float64) float64 { return a + b }}

// Min aggregates by minimum (non-invertible: subtraction cannot undo it).
var Min = AggFn{Name: "min", Identity: inf, Combine: func(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}}

// Max aggregates by maximum.
var Max = AggFn{Name: "max", Identity: -inf, Combine: func(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}}

var inf = math.Inf(1)

// SlidingAggregator consumes a timestamp-ordered stream and produces one
// aggregate per slide over the trailing window of length Range.
type SlidingAggregator interface {
	// Add ingests an element with a non-decreasing timestamp. It returns the
	// completed results (one per slide boundary crossed), each covering the
	// half-open interval [end-Range, end).
	Add(ts int64, v float64) []Result
	// Name identifies the strategy for reports.
	Name() string
}

// Result is one emitted window aggregate.
type Result struct {
	End   int64
	Value float64
}

// --- Naive re-evaluation -----------------------------------------------

// NaiveSliding buffers raw elements and recomputes the full aggregate per
// emission — the strawman early systems started from.
type NaiveSliding struct {
	rng, slide int64
	fn         AggFn
	buf        []tsVal
	nextEmit   int64
	primed     bool
}

type tsVal struct {
	ts int64
	v  float64
}

// NewNaiveSliding returns a naive aggregator with the given range and slide.
func NewNaiveSliding(rng, slide int64, fn AggFn) *NaiveSliding {
	return &NaiveSliding{rng: rng, slide: slide, fn: fn}
}

// Name implements SlidingAggregator.
func (n *NaiveSliding) Name() string { return "naive" }

// Add implements SlidingAggregator.
func (n *NaiveSliding) Add(ts int64, v float64) []Result {
	if !n.primed {
		n.nextEmit = floorDiv(ts, n.slide)*n.slide + n.slide
		n.primed = true
	}
	var out []Result
	for ts >= n.nextEmit {
		out = append(out, Result{End: n.nextEmit, Value: n.eval(n.nextEmit)})
		n.nextEmit += n.slide
	}
	n.buf = append(n.buf, tsVal{ts, v})
	// Evict elements that can never contribute again.
	cut := n.nextEmit - n.slide - n.rng
	i := 0
	for i < len(n.buf) && n.buf[i].ts <= cut {
		i++
	}
	n.buf = n.buf[i:]
	return out
}

func (n *NaiveSliding) eval(end int64) float64 {
	acc := n.fn.Identity
	for _, e := range n.buf {
		if e.ts >= end-n.rng && e.ts < end {
			acc = n.fn.Combine(acc, e.v)
		}
	}
	return acc
}

// --- Pane-based partial aggregation -------------------------------------

// PaneSliding partitions time into panes of gcd(range, slide), keeps one
// partial aggregate per pane, and assembles each window from range/pane
// partials — Li et al.'s "no pane, no gain" design.
type PaneSliding struct {
	rng, slide, pane int64
	fn               AggFn
	partials         map[int64]float64 // pane start -> partial
	nextEmit         int64
	primed           bool
}

// NewPaneSliding returns a pane-based aggregator.
func NewPaneSliding(rng, slide int64, fn AggFn) *PaneSliding {
	return &PaneSliding{
		rng: rng, slide: slide, pane: gcd(rng, slide), fn: fn,
		partials: make(map[int64]float64),
	}
}

// Name implements SlidingAggregator.
func (p *PaneSliding) Name() string { return "panes" }

// Add implements SlidingAggregator.
func (p *PaneSliding) Add(ts int64, v float64) []Result {
	if !p.primed {
		p.nextEmit = floorDiv(ts, p.slide)*p.slide + p.slide
		p.primed = true
	}
	var out []Result
	for ts >= p.nextEmit {
		out = append(out, Result{End: p.nextEmit, Value: p.eval(p.nextEmit)})
		// Evict panes wholly before the next window.
		cut := p.nextEmit + p.slide - p.rng
		for start := range p.partials {
			if start+p.pane <= cut {
				delete(p.partials, start)
			}
		}
		p.nextEmit += p.slide
	}
	start := floorDiv(ts, p.pane) * p.pane
	if cur, ok := p.partials[start]; ok {
		p.partials[start] = p.fn.Combine(cur, v)
	} else {
		p.partials[start] = v
	}
	return out
}

func (p *PaneSliding) eval(end int64) float64 {
	acc := p.fn.Identity
	for start := end - p.rng; start < end; start += p.pane {
		if v, ok := p.partials[start]; ok {
			acc = p.fn.Combine(acc, v)
		}
	}
	return acc
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// --- Two-stacks incremental aggregation ---------------------------------

// TwoStacksSliding maintains the window in two stacks with running
// aggregates, giving O(1) amortized insert/evict/query for any associative
// function — including non-invertible ones (min/max), which neither
// subtraction tricks nor panes-with-eviction can serve as cheaply.
type TwoStacksSliding struct {
	rng, slide int64
	fn         AggFn
	front      []stackEntry // evict side: agg is suffix aggregate
	back       []stackEntry // insert side: agg is running aggregate
	nextEmit   int64
	primed     bool
}

type stackEntry struct {
	ts  int64
	v   float64
	agg float64
}

// NewTwoStacksSliding returns a two-stacks aggregator.
func NewTwoStacksSliding(rng, slide int64, fn AggFn) *TwoStacksSliding {
	return &TwoStacksSliding{rng: rng, slide: slide, fn: fn}
}

// Name implements SlidingAggregator.
func (t *TwoStacksSliding) Name() string { return "two-stacks" }

// Add implements SlidingAggregator.
func (t *TwoStacksSliding) Add(ts int64, v float64) []Result {
	if !t.primed {
		t.nextEmit = floorDiv(ts, t.slide)*t.slide + t.slide
		t.primed = true
	}
	var out []Result
	for ts >= t.nextEmit {
		// Window is [end-rng, end): evict strictly-older elements only.
		t.evictUpTo(t.nextEmit - t.rng - 1)
		out = append(out, Result{End: t.nextEmit, Value: t.query()})
		t.nextEmit += t.slide
	}
	// Push onto back with running aggregate.
	agg := v
	if len(t.back) > 0 {
		agg = t.fn.Combine(t.back[len(t.back)-1].agg, v)
	}
	t.back = append(t.back, stackEntry{ts: ts, v: v, agg: agg})
	return out
}

// evictUpTo removes all elements with ts <= bound.
func (t *TwoStacksSliding) evictUpTo(bound int64) {
	for {
		if len(t.front) == 0 {
			t.flip()
			if len(t.front) == 0 {
				return
			}
		}
		if t.front[len(t.front)-1].ts > bound {
			return
		}
		t.front = t.front[:len(t.front)-1]
	}
}

// flip moves the back stack into the front stack with suffix aggregates —
// the amortized-O(1) trick. Elements are pushed newest-first so the oldest
// ends on top; each pushed entry's agg covers itself and everything newer in
// the flipped batch, so after popping the k oldest, the new top's agg is
// exactly the aggregate of what remains.
func (t *TwoStacksSliding) flip() {
	if len(t.back) == 0 {
		return
	}
	t.front = t.front[:0]
	acc := t.fn.Identity
	for i := len(t.back) - 1; i >= 0; i-- {
		acc = t.fn.Combine(t.back[i].v, acc)
		t.front = append(t.front, stackEntry{ts: t.back[i].ts, v: t.back[i].v, agg: acc})
	}
	t.back = t.back[:0]
}

// query returns the aggregate of front ∪ back.
func (t *TwoStacksSliding) query() float64 {
	acc := t.fn.Identity
	if len(t.front) > 0 {
		acc = t.front[len(t.front)-1].agg
	}
	if len(t.back) > 0 {
		acc = t.fn.Combine(acc, t.back[len(t.back)-1].agg)
	}
	return acc
}
