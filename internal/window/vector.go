package window

// This file provides the batch-vectorized window kernels of experiment E10.
// §4.2 of the paper argues stream-native operations such as window
// aggregation benefit from hardware accelerators (GPUs, FPGAs; Saber, Fleet).
// We cannot ship an FPGA, but the property those results rest on — dense,
// branch-free, data-parallel batch kernels beating per-record virtual
// dispatch — is reproducible on a CPU: ScalarTumbling processes one record
// per interface call; BatchTumbling consumes contiguous batches with an
// unrolled tight loop the compiler can optimise.

// TumblingKernel computes per-window aggregates over a dense value stream
// where values arrive at a fixed rate (one per tick), so window boundaries
// are index-aligned — the layout accelerator papers assume.
type TumblingKernel interface {
	// Process consumes values and returns completed window aggregates.
	Process(values []float64) []float64
	// Flush drains the partially filled trailing window at end of stream,
	// returning its aggregate and whether any values were buffered. Without
	// it the batched path silently retains tail records forever whenever the
	// input length is not a multiple of the window size.
	Flush() (float64, bool)
	Name() string
}

// ScalarTumbling is the per-record path: one dynamic dispatch per value.
type ScalarTumbling struct {
	size int
	fn   AggFn
	acc  float64
	n    int
}

// NewScalarTumbling returns a per-record tumbling aggregator of the given
// window size in records.
func NewScalarTumbling(size int, fn AggFn) *ScalarTumbling {
	return &ScalarTumbling{size: size, fn: fn, acc: fn.Identity}
}

// Name implements TumblingKernel.
func (s *ScalarTumbling) Name() string { return "scalar" }

// Flush implements TumblingKernel.
func (s *ScalarTumbling) Flush() (float64, bool) {
	if s.n == 0 {
		return 0, false
	}
	out := s.acc
	s.acc = s.fn.Identity
	s.n = 0
	return out, true
}

// Process implements TumblingKernel.
func (s *ScalarTumbling) Process(values []float64) []float64 {
	var out []float64
	for _, v := range values {
		s.acc = s.fn.Combine(s.acc, v)
		s.n++
		if s.n == s.size {
			out = append(out, s.acc)
			s.acc = s.fn.Identity
			s.n = 0
		}
	}
	return out
}

// BatchTumbling is the vectorized path: specialised monomorphic kernels with
// 4-way unrolled inner loops over full windows.
type BatchTumbling struct {
	size int
	fn   AggFn
	kind string // "sum", "min", "max" select the specialised kernel
	tail []float64
}

// NewBatchTumbling returns a batched tumbling aggregator.
func NewBatchTumbling(size int, fn AggFn) *BatchTumbling {
	return &BatchTumbling{size: size, fn: fn, kind: fn.Name}
}

// Name implements TumblingKernel.
func (b *BatchTumbling) Name() string { return "vectorized" }

// Flush implements TumblingKernel.
func (b *BatchTumbling) Flush() (float64, bool) {
	if len(b.tail) == 0 {
		return 0, false
	}
	var out float64
	switch b.kind {
	case "sum":
		out = sumKernel(b.tail)
	case "min":
		out = minKernel(b.tail)
	case "max":
		out = maxKernel(b.tail)
	default:
		out = b.fn.Identity
		for _, v := range b.tail {
			out = b.fn.Combine(out, v)
		}
	}
	b.tail = b.tail[:0]
	return out, true
}

// Process implements TumblingKernel.
func (b *BatchTumbling) Process(values []float64) []float64 {
	data := values
	if len(b.tail) > 0 {
		data = append(b.tail, values...)
	}
	nWin := len(data) / b.size
	out := make([]float64, 0, nWin)
	for w := 0; w < nWin; w++ {
		seg := data[w*b.size : (w+1)*b.size]
		switch b.kind {
		case "sum":
			out = append(out, sumKernel(seg))
		case "min":
			out = append(out, minKernel(seg))
		case "max":
			out = append(out, maxKernel(seg))
		default:
			acc := b.fn.Identity
			for _, v := range seg {
				acc = b.fn.Combine(acc, v)
			}
			out = append(out, acc)
		}
	}
	b.tail = append(b.tail[:0], data[nWin*b.size:]...)
	return out
}

// sumKernel is a 4-way unrolled sum with independent accumulators, breaking
// the dependency chain so the CPU can pipeline the adds.
func sumKernel(seg []float64) float64 {
	var a0, a1, a2, a3 float64
	i := 0
	for ; i+4 <= len(seg); i += 4 {
		a0 += seg[i]
		a1 += seg[i+1]
		a2 += seg[i+2]
		a3 += seg[i+3]
	}
	acc := a0 + a1 + a2 + a3
	for ; i < len(seg); i++ {
		acc += seg[i]
	}
	return acc
}

func minKernel(seg []float64) float64 {
	acc := inf
	for _, v := range seg {
		if v < acc {
			acc = v
		}
	}
	return acc
}

func maxKernel(seg []float64) float64 {
	acc := -inf
	for _, v := range seg {
		if v > acc {
			acc = v
		}
	}
	return acc
}
