package window

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
)

func TestTumblingAssign(t *testing.T) {
	a := NewTumbling(10)
	for _, tc := range []struct {
		ts    int64
		start int64
	}{
		{0, 0}, {9, 0}, {10, 10}, {15, 10}, {-1, -10}, {-10, -10},
	} {
		ws := a.Assign(tc.ts)
		if len(ws) != 1 || ws[0].Start != tc.start || ws[0].End != tc.start+10 {
			t.Fatalf("Assign(%d) = %v, want start %d", tc.ts, ws, tc.start)
		}
	}
}

func TestSlidingAssignCoversTimestamp(t *testing.T) {
	// Property: every assigned window contains the timestamp, and the count
	// equals size/slide for aligned parameters.
	a := NewSliding(60, 20)
	check := func(ts int64) bool {
		ws := a.Assign(ts % 1_000_000)
		if len(ws) != 3 {
			return false
		}
		for _, w := range ws {
			if !w.Contains(ts % 1_000_000) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSessionAssign(t *testing.T) {
	a := NewSession(30)
	ws := a.Assign(100)
	if len(ws) != 1 || ws[0].Start != 100 || ws[0].End != 130 {
		t.Fatalf("session assign wrong: %v", ws)
	}
	if !a.IsSession() {
		t.Fatal("session assigner must report IsSession")
	}
}

// TestSlidingAggregatorsAgree is the E3 correctness property: all three
// strategies produce identical results on random ordered streams, for both
// invertible (sum) and non-invertible (min, max) functions.
func TestSlidingAggregatorsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		size := int64(10+rng.Intn(50)) * 10
		slide := int64(1+rng.Intn(10)) * 10
		if slide > size {
			slide = size
		}
		for _, fn := range []AggFn{Sum, Min, Max} {
			naive := NewNaiveSliding(size, slide, fn)
			panes := NewPaneSliding(size, slide, fn)
			stacks := NewTwoStacksSliding(size, slide, fn)

			ts := int64(0)
			var rn, rp, rs []Result
			for i := 0; i < 2000; i++ {
				ts += int64(rng.Intn(8))
				v := rng.Float64()*200 - 100
				rn = append(rn, naive.Add(ts, v)...)
				rp = append(rp, panes.Add(ts, v)...)
				rs = append(rs, stacks.Add(ts, v)...)
			}
			if len(rn) != len(rp) || len(rn) != len(rs) {
				t.Fatalf("%s size=%d slide=%d: result counts differ: naive=%d panes=%d stacks=%d",
					fn.Name, size, slide, len(rn), len(rp), len(rs))
			}
			for i := range rn {
				if rn[i].End != rp[i].End || rn[i].End != rs[i].End {
					t.Fatalf("%s: window ends differ at %d: %v %v %v", fn.Name, i, rn[i], rp[i], rs[i])
				}
				if !almostEq(rn[i].Value, rp[i].Value) || !almostEq(rn[i].Value, rs[i].Value) {
					t.Fatalf("%s size=%d slide=%d result %d(end=%d): naive=%v panes=%v stacks=%v",
						fn.Name, size, slide, i, rn[i].End, rn[i].Value, rp[i].Value, rs[i].Value)
				}
			}
		}
	}
}

func almostEq(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	scale := 1.0
	if a > scale {
		scale = a
	}
	if -a > scale {
		scale = -a
	}
	return d <= 1e-6*scale
}

func TestVectorizedKernelMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, fn := range []AggFn{Sum, Min, Max} {
		scalar := NewScalarTumbling(64, fn)
		batch := NewBatchTumbling(64, fn)
		values := make([]float64, 64*100+17)
		for i := range values {
			values[i] = rng.Float64() * 1000
		}
		rs := scalar.Process(values)
		rb := batch.Process(values)
		if len(rs) != len(rb) {
			t.Fatalf("%s: result count differs: %d vs %d", fn.Name, len(rs), len(rb))
		}
		for i := range rs {
			if !almostEq(rs[i], rb[i]) {
				t.Fatalf("%s window %d: scalar=%v batch=%v", fn.Name, i, rs[i], rb[i])
			}
		}
	}
}

// --- Engine integration tests -------------------------------------------

func buildWindowJob(t *testing.T, events []core.Event, assigner Assigner, agg Aggregate, opts ...Option) *core.CollectSink {
	t.Helper()
	sink := core.NewCollectSink()
	b := core.NewBuilder(core.Config{Name: "win-test", WatermarkInterval: 1})
	s := b.Source("src", core.NewSliceSourceFactory(events), core.WithBoundedDisorder(0)).
		KeyBy(func(e core.Event) string { return e.Key })
	Apply(s, "window", assigner, agg, opts...).
		Sink("out", sink.Factory())
	j, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := j.Run(ctx); err != nil {
		t.Fatal(err)
	}
	return sink
}

func TestTumblingCountInEngine(t *testing.T) {
	// 100 events, 10ms apart, two keys alternating; tumbling 100ms → each
	// window holds 10 events, 5 per key.
	var events []core.Event
	for i := 0; i < 100; i++ {
		events = append(events, core.Event{
			Key:       fmt.Sprintf("k%d", i%2),
			Timestamp: int64(i * 10),
			Value:     1.0,
		})
	}
	sink := buildWindowJob(t, events, NewTumbling(100), CountAggregate())
	// 10 windows x 2 keys.
	if sink.Len() != 20 {
		t.Fatalf("want 20 window results, got %d: %v", sink.Len(), sink.Events())
	}
	for _, e := range sink.Events() {
		if e.Value.(int64) != 5 {
			t.Fatalf("window count: want 5, got %v (%v)", e.Value, e)
		}
	}
}

func TestSlidingSumInEngine(t *testing.T) {
	var events []core.Event
	for i := 0; i < 60; i++ {
		events = append(events, core.Event{Key: "k", Timestamp: int64(i * 10), Value: 1.0})
	}
	sink := buildWindowJob(t, events, NewSliding(100, 50),
		FloatAggregate(Sum, func(e core.Event) float64 { return e.Value.(float64) }))
	// Full windows contain 10 events each.
	full := 0
	for _, e := range sink.Events() {
		if e.Value.(float64) == 10 {
			full++
		}
	}
	if full < 9 {
		t.Fatalf("expected at least 9 full sliding windows of sum 10, got %d: %v", full, sink.Events())
	}
}

func TestSessionWindowsMerge(t *testing.T) {
	// Two bursts per key separated by more than the gap → two sessions.
	events := []core.Event{
		{Key: "a", Timestamp: 0, Value: 1.0},
		{Key: "a", Timestamp: 10, Value: 1.0},
		{Key: "a", Timestamp: 20, Value: 1.0},
		{Key: "a", Timestamp: 200, Value: 1.0},
		{Key: "a", Timestamp: 210, Value: 1.0},
		{Key: "b", Timestamp: 500, Value: 1.0},
	}
	sink := buildWindowJob(t, events, NewSession(50), CountAggregate())
	got := map[string][]int64{}
	for _, e := range sink.Events() {
		got[e.Key] = append(got[e.Key], e.Value.(int64))
	}
	if len(got["a"]) != 2 {
		t.Fatalf("key a: want 2 sessions, got %v", got["a"])
	}
	sum := got["a"][0] + got["a"][1]
	if sum != 5 {
		t.Fatalf("key a sessions should cover 5 events, got %v", got["a"])
	}
	if len(got["b"]) != 1 || got["b"][0] != 1 {
		t.Fatalf("key b: want one session of 1, got %v", got["b"])
	}
}

func TestLateDataDroppedWithoutLateness(t *testing.T) {
	// Ordered events advance the watermark past window [0,100); then a late
	// event for that window arrives and must be dropped.
	var events []core.Event
	for i := 0; i < 30; i++ {
		events = append(events, core.Event{Key: "k", Timestamp: int64(i * 10), Value: 1.0})
	}
	// Late straggler into the first window.
	events = append(events, core.Event{Key: "k", Timestamp: 5, Value: 1.0})
	sink := buildWindowJob(t, events, NewTumbling(100), CountAggregate())
	for _, e := range sink.Events() {
		if e.Timestamp == 99 && e.Value.(int64) != 10 {
			t.Fatalf("first window should count 10 on-time events, got %v", e.Value)
		}
	}
}

func TestAllowedLatenessReemits(t *testing.T) {
	var events []core.Event
	for i := 0; i < 30; i++ {
		events = append(events, core.Event{Key: "k", Timestamp: int64(i * 10), Value: 1.0})
	}
	events = append(events, core.Event{Key: "k", Timestamp: 5, Value: 1.0})
	sink := buildWindowJob(t, events, NewTumbling(100), CountAggregate(), WithAllowedLateness(1_000_000))
	// The first window fires on time with 10, then re-fires with 11 when the
	// allowed-late straggler arrives.
	var firstWindow []int64
	for _, e := range sink.Events() {
		if e.Timestamp == 99 {
			firstWindow = append(firstWindow, e.Value.(int64))
		}
	}
	if len(firstWindow) != 2 || firstWindow[0] != 10 || firstWindow[1] != 11 {
		t.Fatalf("want on-time 10 then late update 11, got %v", firstWindow)
	}
}

func TestCountWindowInEngine(t *testing.T) {
	var events []core.Event
	for i := 0; i < 25; i++ {
		events = append(events, core.Event{Key: "k", Timestamp: int64(i), Value: 1.0})
	}
	sink := core.NewCollectSink()
	b := core.NewBuilder(core.Config{Name: "cw"})
	s := b.Source("src", core.NewSliceSourceFactory(events)).
		KeyBy(func(e core.Event) string { return e.Key })
	CountWindow(s, "cw", 10, CountAggregate()).Sink("out", sink.Factory())
	j, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := j.Run(ctx); err != nil {
		t.Fatal(err)
	}
	// 25 events → two complete windows of 10 (the trailing 5 never fire).
	if sink.Len() != 2 {
		t.Fatalf("want 2 count windows, got %d", sink.Len())
	}
	for _, e := range sink.Events() {
		if e.Value.(int64) != 10 {
			t.Fatalf("count window: want 10, got %v", e.Value)
		}
	}
}

func TestGlobalWindowFiresAtEndOfStream(t *testing.T) {
	var events []core.Event
	for i := 0; i < 40; i++ {
		events = append(events, core.Event{Key: "k", Timestamp: int64(i), Value: 1.0})
	}
	sink := buildWindowJob(t, events, GlobalAssigner{}, CountAggregate())
	if sink.Len() != 1 {
		t.Fatalf("global window: want 1 result, got %d", sink.Len())
	}
	if got := sink.Events()[0].Value.(int64); got != 40 {
		t.Fatalf("global window count: want 40, got %d", got)
	}
}

// TestKernelFlushParity pins scalar↔vectorized parity including the
// end-of-stream Flush, over random batch splits whose lengths are not
// multiples of the window size — the shape that used to leave tail records
// silently retained in BatchTumbling.
func TestKernelFlushParity(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, fn := range []AggFn{Sum, Min, Max} {
		for _, size := range []int{3, 7, 64} {
			for trial := 0; trial < 20; trial++ {
				n := size*rng.Intn(10) + rng.Intn(2*size) + 1
				values := make([]float64, n)
				for i := range values {
					values[i] = rng.Float64() * 1000
				}
				scalar := NewScalarTumbling(size, fn)
				batch := NewBatchTumbling(size, fn)
				var rs, rb []float64
				// Feed identical data in different split points: one value
				// at a time vs random odd-sized chunks.
				for _, v := range values {
					rs = append(rs, scalar.Process([]float64{v})...)
				}
				for off := 0; off < n; {
					c := 1 + rng.Intn(size+3)
					if off+c > n {
						c = n - off
					}
					rb = append(rb, batch.Process(values[off:off+c])...)
					off += c
				}
				sv, sok := scalar.Flush()
				bv, bok := batch.Flush()
				if sok != bok {
					t.Fatalf("%s size=%d n=%d: flush presence differs: scalar=%v batch=%v",
						fn.Name, size, n, sok, bok)
				}
				if wantTail := n%size != 0; sok != wantTail {
					t.Fatalf("%s size=%d n=%d: flush=%v, want %v", fn.Name, size, n, sok, wantTail)
				}
				if sok {
					rs = append(rs, sv)
					rb = append(rb, bv)
				}
				if len(rs) != len(rb) {
					t.Fatalf("%s size=%d n=%d: window count differs: %d vs %d",
						fn.Name, size, n, len(rs), len(rb))
				}
				for i := range rs {
					if !almostEq(rs[i], rb[i]) {
						t.Fatalf("%s size=%d n=%d window %d: scalar=%v batch=%v",
							fn.Name, size, n, i, rs[i], rb[i])
					}
				}
			}
		}
	}
}

// TestKernelFlushIsIdempotent: a second Flush (or one after an exact
// multiple) must report nothing buffered.
func TestKernelFlushIsIdempotent(t *testing.T) {
	for _, k := range []TumblingKernel{NewScalarTumbling(4, Sum), NewBatchTumbling(4, Sum)} {
		k.Process([]float64{1, 2, 3, 4, 5})
		if _, ok := k.Flush(); !ok {
			t.Fatalf("%s: expected a trailing partial window", k.Name())
		}
		if _, ok := k.Flush(); ok {
			t.Fatalf("%s: second flush should be empty", k.Name())
		}
		k.Process([]float64{1, 2, 3, 4})
		if _, ok := k.Flush(); ok {
			t.Fatalf("%s: flush after exact multiple should be empty", k.Name())
		}
	}
}

// TestCountWindowEmitsTrueStart pins the count-window bound fix: the emitted
// window's Start must be the first buffered element's timestamp, not a
// fabricated 0.
func TestCountWindowEmitsTrueStart(t *testing.T) {
	// Timestamps deliberately start well above 0 so the old fabricated
	// Window{Start: 0} would be caught.
	var events []core.Event
	for i := 0; i < 12; i++ {
		events = append(events, core.Event{Key: "k", Timestamp: int64(1000 + 5*i), Value: 1.0})
	}
	// Surface the window bounds through a custom Emit: Value = [start, end, count].
	agg := Aggregate{
		Create: func() any { return int64(0) },
		Add:    func(acc any, _ core.Event) any { return acc.(int64) + 1 },
		Emit: func(key string, w Window, acc any) core.Event {
			return core.Event{Key: key, Timestamp: w.End - 1, Value: [3]int64{w.Start, w.End, acc.(int64)}}
		},
	}
	sink := core.NewCollectSink()
	b := core.NewBuilder(core.Config{Name: "cw-start"})
	s := b.Source("src", core.NewSliceSourceFactory(events)).
		KeyBy(func(e core.Event) string { return e.Key })
	CountWindow(s, "cw", 5, agg).Sink("out", sink.Factory())
	j, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := j.Run(ctx); err != nil {
		t.Fatal(err)
	}
	if sink.Len() != 2 {
		t.Fatalf("want 2 count windows, got %d: %v", sink.Len(), sink.Events())
	}
	// First window buffers ts 1000..1020, second 1025..1045.
	want := [][3]int64{{1000, 1021, 5}, {1025, 1046, 5}}
	got := sink.Events()
	for i, w := range want {
		if got[i].Value.([3]int64) != w {
			t.Fatalf("window %d: want start/end/count %v, got %v", i, w, got[i].Value)
		}
	}
}

// buildColumnarWindowJob is buildWindowJob with a batched exchange and the
// ColumnarExec flag under test.
func buildColumnarWindowJob(t *testing.T, events []core.Event, assigner Assigner, agg Aggregate, columnar bool, opts ...Option) *core.CollectSink {
	t.Helper()
	sink := core.NewCollectSink()
	b := core.NewBuilder(core.Config{
		Name: "win-columnar", WatermarkInterval: 4, MaxBatchSize: 16, ColumnarExec: columnar,
	})
	s := b.Source("src", core.NewSliceSourceFactory(events), core.WithBoundedDisorder(0)).
		KeyBy(func(e core.Event) string { return e.Key })
	Apply(s, "window", assigner, agg, opts...).
		Sink("out", sink.Factory())
	j, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := j.Run(ctx); err != nil {
		t.Fatal(err)
	}
	return sink
}

// TestColumnarWindowMatchesPerRecord runs the same windowed aggregations with
// ColumnarExec off and on and requires identical output multisets, covering
// the whole-batch fast path (tumbling sum/count), the per-element fallback
// (sessions) and the late-but-allowed re-emit replay.
func TestColumnarWindowMatchesPerRecord(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	var events []core.Event
	for i := 0; i < 600; i++ {
		// Key runs of a few records, integer-valued floats so sums are exact.
		events = append(events, core.Event{
			Key:       fmt.Sprintf("k%d", (i/3)%7),
			Timestamp: int64(i),
			Value:     float64(rng.Intn(100)),
		})
	}
	// A late-but-allowed straggler per key exercises the re-emit replay.
	for k := 0; k < 7; k++ {
		events = append(events, core.Event{Key: fmt.Sprintf("k%d", k), Timestamp: 5, Value: 1.0})
	}
	cases := []struct {
		name     string
		assigner Assigner
		agg      Aggregate
		opts     []Option
	}{
		{"tumbling-sum", NewTumbling(100), FloatAggregate(Sum, func(e core.Event) float64 { return e.Value.(float64) }), nil},
		{"tumbling-count-lateness", NewTumbling(100), CountAggregate(), []Option{WithAllowedLateness(1_000_000)}},
		{"sliding-count", NewSliding(100, 50), CountAggregate(), nil},
		{"session-count", NewSession(40), CountAggregate(), nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			off := buildColumnarWindowJob(t, events, tc.assigner, tc.agg, false, tc.opts...)
			on := buildColumnarWindowJob(t, events, tc.assigner, tc.agg, true, tc.opts...)
			toMultiset := func(evs []core.Event) map[string]int {
				m := map[string]int{}
				for _, e := range evs {
					m[fmt.Sprintf("%s@%d=%v", e.Key, e.Timestamp, e.Value)]++
				}
				return m
			}
			a, b := toMultiset(off.Events()), toMultiset(on.Events())
			if len(a) != len(b) {
				t.Fatalf("distinct outputs differ: off=%d on=%d", len(a), len(b))
			}
			for k, n := range a {
				if b[k] != n {
					t.Fatalf("output %q: off=%d on=%d", k, n, b[k])
				}
			}
			if off.Len() != on.Len() {
				t.Fatalf("output count differs: off=%d on=%d", off.Len(), on.Len())
			}
		})
	}
}
