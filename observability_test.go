package repro

// Observability integration tests: latency markers, watermark/queue gauges,
// checkpoint metrics and the introspection server exercised against full
// pipelines with windowing and CEP operators — the layers a marker actually
// traverses in production.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/cep"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/obsv"
	"repro/internal/window"
)

// buildObsPipeline wires generator -> windowed count and generator -> CEP
// pattern into one job, optionally instrumented with markers and a tracer.
func buildObsPipeline(t *testing.T, name string, instrument bool, tracer *obsv.Tracer, winSink, alertSink *core.CollectSink) *core.Job {
	t.Helper()
	cfg := core.Config{
		Name:            name,
		ChannelCapacity: 8,
		SnapshotStore:   core.NewMemorySnapshotStore(),
		CheckpointEvery: 500,
	}
	if instrument {
		cfg.Instrument = true
		cfg.LatencyMarkerInterval = 7 // frequent enough to hit every operator
		cfg.Tracer = tracer
	}
	b := core.NewBuilder(cfg)
	spec := gen.FraudSpec(3_000, 10, 0.05, 9)
	txns := b.Source("txns", gen.SourceFactory(spec), core.WithBoundedDisorder(0))

	keyed := txns.KeyBy(func(e core.Event) string { return e.Value.(gen.Transaction).Card })
	window.Apply(keyed, "win", window.NewTumbling(1_000), window.CountAggregate()).
		Sink("wins", winSink.Factory())

	small := func(e core.Event) bool { return e.Value.(gen.Transaction).Amount < 100 }
	large := func(e core.Event) bool { return e.Value.(gen.Transaction).Amount >= 500 }
	pattern := cep.Begin("p1", small).FollowedBy("hit", large).Within(60_000).MustBuild()
	cep.PatternStream(keyed, "pattern", pattern, func(card string, m cep.Match, emit func(core.Event)) {
		emit(core.Event{Key: card, Timestamp: m.End, Value: "alert"})
	}, cep.SkipPastLastEvent()).Sink("alerts", alertSink.Factory())

	j, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func sortedEvents(s *core.CollectSink) []core.Event {
	evs := s.Events()
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].Timestamp != evs[j].Timestamp {
			return evs[i].Timestamp < evs[j].Timestamp
		}
		if evs[i].Key != evs[j].Key {
			return evs[i].Key < evs[j].Key
		}
		return fmt.Sprint(evs[i].Value) < fmt.Sprint(evs[j].Value)
	})
	return evs
}

// TestLatencyMarkersDoNotPerturbOperators runs the window+CEP pipeline twice —
// instrumented with aggressive markers and bare — and requires identical
// output. Markers flow through the same channels as records and barriers, so
// any leak into operator state shows up as a diff.
func TestLatencyMarkersDoNotPerturbOperators(t *testing.T) {
	winA, alertA := core.NewCollectSink(), core.NewCollectSink()
	runWithTimeout(t, buildObsPipeline(t, "obs-on", true, obsv.NewTracer(obsv.DefaultTraceCapacity), winA, alertA))

	winB, alertB := core.NewCollectSink(), core.NewCollectSink()
	runWithTimeout(t, buildObsPipeline(t, "obs-off", false, nil, winB, alertB))

	if winA.Len() == 0 || alertA.Len() == 0 {
		t.Fatalf("degenerate run: %d window results, %d alerts", winA.Len(), alertA.Len())
	}
	wa, wb := sortedEvents(winA), sortedEvents(winB)
	if len(wa) != len(wb) {
		t.Fatalf("window output sizes differ: %d vs %d", len(wa), len(wb))
	}
	for i := range wa {
		if wa[i] != wb[i] {
			t.Fatalf("window result %d differs with markers on: %+v vs %+v", i, wa[i], wb[i])
		}
	}
	aa, ab := sortedEvents(alertA), sortedEvents(alertB)
	if len(aa) != len(ab) {
		t.Fatalf("alert counts differ: %d vs %d", len(aa), len(ab))
	}
	for i := range aa {
		if aa[i] != ab[i] {
			t.Fatalf("alert %d differs with markers on: %+v vs %+v", i, aa[i], ab[i])
		}
	}
}

// TestLatencyHistogramsPopulatedPerOperator asserts every operator the
// markers traverse records end-to-end latency, including windowing and CEP
// nodes and both sinks.
func TestLatencyHistogramsPopulatedPerOperator(t *testing.T) {
	winSink, alertSink := core.NewCollectSink(), core.NewCollectSink()
	j := buildObsPipeline(t, "obs-hist", true, nil, winSink, alertSink)
	runWithTimeout(t, j)

	for _, nodeName := range []string{"win", "wins", "pattern", "alerts"} {
		h := j.Metrics().Histogram("node." + nodeName + ".latency_ns")
		if h.Count() == 0 {
			t.Fatalf("node %s: latency histogram empty\n%s", nodeName, j.Metrics().Dump())
		}
		if h.Min() < 0 || h.Max() > int64(time.Minute) {
			t.Fatalf("node %s: implausible marker latency [%d, %d]", nodeName, h.Min(), h.Max())
		}
	}
	// Source fan-out edges carry per-hop latency too.
	for _, edge := range []string{"edge.txns.win.hop_ns", "edge.txns.pattern.hop_ns"} {
		if j.Metrics().Histogram(edge).Count() == 0 {
			t.Fatalf("%s empty", edge)
		}
	}
}

// TestIntrospectionServerAcceptance boots /metrics, /jobs and /traces against
// the instrumented pipeline and verifies the advertised series are present —
// the curl-level acceptance for the observability layer.
func TestIntrospectionServerAcceptance(t *testing.T) {
	tr := obsv.NewTracer(obsv.DefaultTraceCapacity)
	winSink, alertSink := core.NewCollectSink(), core.NewCollectSink()
	j := buildObsPipeline(t, "obs-http", true, tr, winSink, alertSink)
	srv, err := j.ServeIntrospection("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	runWithTimeout(t, j)

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d\n%s", path, resp.StatusCode, body)
		}
		return string(body)
	}

	metricsOut := get("/metrics")
	for _, series := range []string{
		"node_win_in ",
		"node_pattern_in ",
		"node_win_0_watermark_lag_ms ",
		"node_win_0_queue_depth ",
		"# TYPE node_win_latency_ns histogram",
		"checkpoint_duration_ns_count ",
		"edge_txns_win_blocked_ns_count ",
	} {
		if !strings.Contains(metricsOut, series) {
			t.Fatalf("/metrics missing %q", series)
		}
	}

	var jobs []obsv.JobInfo
	if err := json.Unmarshal([]byte(get("/jobs")), &jobs); err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].Name != "obs-http" {
		t.Fatalf("/jobs unexpected: %+v", jobs)
	}
	nodes := map[string]bool{}
	for _, n := range jobs[0].Nodes {
		nodes[n.Name] = true
	}
	for _, want := range []string{"txns", "win", "wins", "pattern", "alerts"} {
		if !nodes[want] {
			t.Fatalf("/jobs missing node %q: %+v", want, jobs[0].Nodes)
		}
	}
	if len(jobs[0].Edges) != 4 {
		t.Fatalf("/jobs edges: %+v", jobs[0].Edges)
	}
	if jobs[0].LastCheckpoint < 1 {
		t.Fatalf("no completed checkpoint on /jobs: %+v", jobs[0])
	}

	var spans []obsv.Span
	if err := json.Unmarshal([]byte(get("/traces")), &spans); err != nil {
		t.Fatal(err)
	}
	if len(spans) == 0 {
		t.Fatal("/traces empty on a traced run")
	}
}
